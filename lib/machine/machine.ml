open Sfi_x86.Ast
module Space = Sfi_vmem.Space
module Tlb = Sfi_vmem.Tlb
module Mpk = Sfi_vmem.Mpk
module Encode = Sfi_x86.Encode

type counters = {
  mutable instructions : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable code_bytes : int;
  mutable seg_base_writes : int;
  mutable pkru_writes : int;
}

type status = Halted | Trapped of trap_kind | Yielded

type fault_info = { fault_addr : int; fault_write : bool }

exception Hostcall_exit of int
exception Trap_exn of trap_kind

(* Raised by [step] when the entry function returns to the halt sentinel. *)
exception Halt_exn

type loaded = {
  program : program;
  offsets : int array; (* byte offset of each instruction *)
  labels : (string, int) Hashtbl.t; (* label -> instruction index *)
  addr_to_index : (int, int) Hashtbl.t; (* absolute byte address -> index *)
  code_len : int;
}

type t = {
  space : Space.t;
  cost : Cost.t;
  tlb : Tlb.t;
  dcache : Tlb.t; (* reused set-associative structure; 64-byte lines *)
  code_base : int;
  fsgsbase_available : bool;
  regs : int64 array;
  vregs : Bytes.t array;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable pkru : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
  mutable pc : int;
  mutable loaded : loaded option;
  mutable space_generation : int;
  mutable fetch_accum : int;
  counters : counters;
  mutable last_fault : fault_info option;
  mutable hostcall : t -> int -> unit;
}

let default_code_base = 8 * 1024 * 1024 * 1024 (* 8 GiB: 4 GiB-aligned, above null *)

let fresh_counters () =
  {
    instructions = 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    code_bytes = 0;
    seg_base_writes = 0;
    pkru_writes = 0;
  }

let default_dcache_config =
  (* 512 lines x 8 ways x 64 B = 32 KiB, a typical L1D. *)
  { Tlb.entries = 512; ways = 8; page_walk_levels = 0; walk_cycles_per_level = 0 }

let create ?(cost = Cost.default) ?(tlb = Tlb.default_config) ?(code_base = default_code_base)
    ?(fsgsbase_available = true) space =
  {
    space;
    cost;
    tlb = Tlb.create tlb;
    dcache = Tlb.create default_dcache_config;
    code_base;
    fsgsbase_available;
    regs = Array.make 16 0L;
    vregs = Array.init 16 (fun _ -> Bytes.make 16 '\000');
    fs_base = 0;
    gs_base = 0;
    pkru = Mpk.allow_all;
    zf = false;
    sf = false;
    cf = false;
    of_ = false;
    pc = 0;
    loaded = None;
    space_generation = Space.generation space;
    fetch_accum = 0;
    counters = fresh_counters ();
    last_fault = None;
    hostcall = (fun _ n -> invalid_arg (Printf.sprintf "no hostcall handler (hostcall %d)" n));
  }

let space t = t.space
let cost_model t = t.cost

let load_program t program =
  let offsets = Encode.layout program in
  let labels = Hashtbl.create 64 in
  let addr_to_index = Hashtbl.create (Array.length program) in
  Array.iteri
    (fun idx i ->
      (match i with
      | Label l ->
          if Hashtbl.mem labels l then invalid_arg ("Machine.load_program: duplicate label " ^ l);
          Hashtbl.replace labels l idx
      | _ -> ());
      (* First instruction at a given byte address wins (labels share the
         address of the instruction that follows them). *)
      let addr = t.code_base + offsets.(idx) in
      if not (Hashtbl.mem addr_to_index addr) then Hashtbl.replace addr_to_index addr idx)
    program;
  let code_len = Encode.program_length program in
  t.loaded <- Some { program; offsets; labels; addr_to_index; code_len };
  t.pc <- 0

let get_loaded t =
  match t.loaded with Some l -> l | None -> invalid_arg "Machine: no program loaded"

let label_index t name =
  let l = get_loaded t in
  match Hashtbl.find_opt l.labels name with
  | Some idx -> idx
  | None -> raise Not_found

let label_address t name =
  let l = get_loaded t in
  t.code_base + l.offsets.(label_index t name)

let code_bounds t =
  let l = get_loaded t in
  (t.code_base, l.code_len)

(* --- Register access --- *)

let get_reg t r = t.regs.(gpr_index r)
let set_reg t r v = t.regs.(gpr_index r) <- v

let read_reg_w t w r =
  let v = t.regs.(gpr_index r) in
  match w with
  | W64 -> v
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W8 -> Int64.logand v 0xFFL

(* x86 semantics: 32-bit writes zero-extend; 8/16-bit writes preserve the
   upper bits of the destination. *)
let write_reg_w t w r v =
  let i = gpr_index r in
  match w with
  | W64 -> t.regs.(i) <- v
  | W32 -> t.regs.(i) <- Int64.logand v 0xFFFFFFFFL
  | W16 -> t.regs.(i) <- Int64.logor (Int64.logand t.regs.(i) (Int64.lognot 0xFFFFL)) (Int64.logand v 0xFFFFL)
  | W8 -> t.regs.(i) <- Int64.logor (Int64.logand t.regs.(i) (Int64.lognot 0xFFL)) (Int64.logand v 0xFFL)

let get_seg_base t = function FS -> t.fs_base | GS -> t.gs_base
let set_seg_base t seg v = match seg with FS -> t.fs_base <- v | GS -> t.gs_base <- v
let get_pkru t = t.pkru
let set_pkru t v = t.pkru <- v
let set_hostcall_handler t f = t.hostcall <- f

(* --- Effective addresses --- *)

let addr_mask_47 = (1 lsl 47) - 1

let effective_address t (m : mem) =
  let base = match m.base with Some r -> t.regs.(gpr_index r) | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) -> Int64.mul t.regs.(gpr_index r) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let sum = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  let sum = if m.addr32 && not m.native_base then Int64.logand sum 0xFFFFFFFFL else sum in
  let seg =
    if m.native_base then t.gs_base
    else match m.seg with Some s -> get_seg_base t s | None -> 0
  in
  Int64.to_int (Int64.add (Int64.of_int seg) sum) land addr_mask_47

(* Lea computes the address expression but never adds the segment base and
   never touches memory. *)
let lea_value t (m : mem) =
  let base = match m.base with Some r -> t.regs.(gpr_index r) | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) -> Int64.mul t.regs.(gpr_index r) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let sum = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  if m.addr32 then Int64.logand sum 0xFFFFFFFFL else sum

(* --- Memory access with TLB and MPK --- *)

(* TLB payload: bits 0-1 = read/write permission, bits 3+ = pkey. *)
let payload_of prot key =
  (if (prot : Sfi_vmem.Prot.t).read then 1 else 0)
  lor (if prot.Sfi_vmem.Prot.write then 2 else 0)
  lor (key lsl 3)

let check_tlb_generation t =
  let g = Space.generation t.space in
  if g <> t.space_generation then begin
    Tlb.flush t.tlb;
    t.space_generation <- g
  end

let check_page t ~page ~write =
  match Tlb.lookup t.tlb ~page with
  | Some payload ->
      let key = payload lsr 3 in
      let ok_prot = if write then payload land 2 <> 0 else payload land 1 <> 0 in
      if not ok_prot then raise (Trap_exn Trap_out_of_bounds);
      if not (Mpk.allows t.pkru ~key ~write) then raise (Trap_exn Trap_out_of_bounds)
  | None -> (
      t.counters.cycles <- t.counters.cycles + Tlb.walk_cost t.tlb;
      match Space.page_info t.space ~addr:(page * Space.page_size) with
      | None -> raise (Trap_exn Trap_out_of_bounds)
      | Some (prot, key) ->
          Tlb.fill t.tlb ~page ~payload:(payload_of prot key);
          let ok_prot = if write then prot.Sfi_vmem.Prot.write else prot.Sfi_vmem.Prot.read in
          if not ok_prot then raise (Trap_exn Trap_out_of_bounds);
          if not (Mpk.allows t.pkru ~key ~write) then raise (Trap_exn Trap_out_of_bounds))

let touch_dcache t addr =
  let line = addr lsr 6 in
  match Tlb.lookup t.dcache ~page:line with
  | Some _ -> ()
  | None ->
      t.counters.cycles <- t.counters.cycles + t.cost.Cost.dcache_miss_cycles;
      Tlb.fill t.dcache ~page:line ~payload:0

let check_access t ~addr ~len ~write =
  try
    check_tlb_generation t;
    let first = addr lsr 12 and last = (addr + len - 1) lsr 12 in
    check_page t ~page:first ~write;
    if last <> first then check_page t ~page:last ~write;
    touch_dcache t addr;
    if (addr + len - 1) lsr 6 <> addr lsr 6 then touch_dcache t (addr + len - 1)
  with Trap_exn _ as e ->
    t.last_fault <- Some { fault_addr = addr; fault_write = write };
    raise e

let load_mem t w addr =
  check_access t ~addr ~len:(width_bytes w) ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  t.counters.cycles <- t.counters.cycles + t.cost.Cost.load_cycles;
  match w with
  | W8 -> Int64.of_int (Space.read8 t.space addr)
  | W16 -> Int64.of_int (Space.read16 t.space addr)
  | W32 -> Int64.logand (Int64.of_int32 (Space.read32 t.space addr)) 0xFFFFFFFFL
  | W64 -> Space.read64 t.space addr

let store_mem t w addr v =
  check_access t ~addr ~len:(width_bytes w) ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  t.counters.cycles <- t.counters.cycles + t.cost.Cost.store_cycles;
  match w with
  | W8 -> Space.write8 t.space addr (Int64.to_int (Int64.logand v 0xFFL))
  | W16 -> Space.write16 t.space addr (Int64.to_int (Int64.logand v 0xFFFFL))
  | W32 -> Space.write32 t.space addr (Int64.to_int32 v)
  | W64 -> Space.write64 t.space addr v

(* --- Operand evaluation --- *)

let read_operand t w = function
  | Reg r -> read_reg_w t w r
  | Imm i -> (
      match w with
      | W64 -> i
      | W32 -> Int64.logand i 0xFFFFFFFFL
      | W16 -> Int64.logand i 0xFFFFL
      | W8 -> Int64.logand i 0xFFL)
  | Mem m -> load_mem t w (effective_address t m)

let write_operand t w op v =
  match op with
  | Reg r -> write_reg_w t w r v
  | Mem m -> store_mem t w (effective_address t m) v
  | Imm _ -> invalid_arg "Machine: immediate as destination"

(* --- Flags --- *)

let width_bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let mask_of_width = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFFFFFFL
  | W64 -> -1L

let sign_bit w v = Int64.logand v (Int64.shift_left 1L (width_bits w - 1)) <> 0L

let set_logic_flags t w r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  t.cf <- false;
  t.of_ <- false

let set_add_flags t w a b r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  (if w = W64 then t.cf <- Int64.unsigned_compare r a < 0
   else
     let ua = Int64.logand a (mask_of_width w) and ub = Int64.logand b (mask_of_width w) in
     t.cf <- Int64.unsigned_compare (Int64.add ua ub) (mask_of_width w) > 0);
  t.of_ <- sign_bit w a = sign_bit w b && sign_bit w r <> sign_bit w a

let set_sub_flags t w a b r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  (let ua = Int64.logand a (mask_of_width w) and ub = Int64.logand b (mask_of_width w) in
   t.cf <- Int64.unsigned_compare ua ub < 0);
  t.of_ <- sign_bit w a <> sign_bit w b && sign_bit w r <> sign_bit w a

let eval_cond t = function
  | E -> t.zf
  | NE -> not t.zf
  | L -> t.sf <> t.of_
  | GE -> t.sf = t.of_
  | LE -> t.zf || t.sf <> t.of_
  | G -> (not t.zf) && t.sf = t.of_
  | B -> t.cf
  | AE -> not t.cf
  | BE -> t.cf || t.zf
  | A -> (not t.cf) && not t.zf
  | S -> t.sf
  | NS -> not t.sf

(* --- Sign extension helper for Movsx / division --- *)

let sext w v =
  match w with
  | W64 -> v
  | _ ->
      let bits = 64 - width_bits w in
      Int64.shift_right (Int64.shift_left v bits) bits

(* --- Execution --- *)

let charge t cycles = t.counters.cycles <- t.counters.cycles + cycles

let charge_frontend t len =
  t.counters.code_bytes <- t.counters.code_bytes + len;
  let bpc = t.cost.Cost.frontend_bytes_per_cycle in
  if bpc > 0 then begin
    let total = t.fetch_accum + len in
    charge t (total / bpc);
    t.fetch_accum <- total mod bpc
  end

let push64 t v =
  let rsp = Int64.to_int (get_reg t RSP) - 8 in
  set_reg t RSP (Int64.of_int rsp);
  check_access t ~addr:rsp ~len:8 ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  Space.write64 t.space rsp v

let pop64 t =
  let rsp = Int64.to_int (get_reg t RSP) in
  check_access t ~addr:rsp ~len:8 ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  let v = Space.read64 t.space rsp in
  set_reg t RSP (Int64.of_int (rsp + 8));
  v

let halt_sentinel = 0L

let jump_to_address t addr =
  let l = get_loaded t in
  match Hashtbl.find_opt l.addr_to_index addr with
  | Some idx -> t.pc <- idx
  | None -> raise (Trap_exn Trap_out_of_bounds)

let return_address t =
  (* Byte address of the instruction after the current one. *)
  let l = get_loaded t in
  let next = t.pc + 1 in
  if next < Array.length l.program then Int64.of_int (t.code_base + l.offsets.(next))
  else Int64.of_int (t.code_base + l.code_len)

let div_by_zero = Trap_exn Trap_integer_divide_by_zero
let div_overflow = Trap_exn Trap_integer_overflow

let exec_div t w signed src =
  charge t t.cost.Cost.div_cycles;
  let divisor = read_operand t w src in
  if signed then begin
    let a = sext w (read_reg_w t w RAX) in
    let b = sext w divisor in
    if b = 0L then raise div_by_zero;
    let min_w = Int64.shift_left 1L (width_bits w - 1) |> sext w in
    if a = min_w && b = -1L then raise div_overflow;
    write_reg_w t w RAX (Int64.div a b);
    write_reg_w t w RDX (Int64.rem a b)
  end
  else begin
    let a = read_reg_w t w RAX in
    let b = divisor in
    if b = 0L then raise div_by_zero;
    write_reg_w t w RAX (Int64.unsigned_div a b);
    write_reg_w t w RDX (Int64.unsigned_rem a b)
  end

let vreg_index (XMM n) =
  if n < 0 || n > 15 then invalid_arg "Machine: bad xmm register";
  n

let step t =
  let l = get_loaded t in
  if t.pc < 0 || t.pc >= Array.length l.program then raise (Trap_exn Trap_out_of_bounds);
  let instr = l.program.(t.pc) in
  t.counters.instructions <- t.counters.instructions + 1;
  charge_frontend t (Encode.instr_length instr);
  let cost = t.cost in
  let next_pc = ref (t.pc + 1) in
  (match instr with
  | Label _ -> t.counters.instructions <- t.counters.instructions - 1
  | Nop -> charge t cost.Cost.alu_cycles
  | Mov (w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_operand t w dst (read_operand t w src)
  | Movzx (dw, sw, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_reg_w t dw dst (read_operand t sw src)
  | Movsx (dw, sw, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_reg_w t dw dst (sext sw (read_operand t sw src))
  | Lea (w, dst, m) ->
      charge t cost.Cost.lea_cycles;
      write_reg_w t w dst (lea_value t m)
  | Alu (op, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      let a = read_operand t w dst and b = read_operand t w src in
      let r =
        match op with
        | Add -> Int64.add a b
        | Sub -> Int64.sub a b
        | And -> Int64.logand a b
        | Or -> Int64.logor a b
        | Xor -> Int64.logxor a b
      in
      (match op with
      | Add -> set_add_flags t w a b r
      | Sub -> set_sub_flags t w a b r
      | And | Or | Xor -> set_logic_flags t w r);
      write_operand t w dst r
  | Shift (op, w, dst, count) ->
      charge t cost.Cost.alu_cycles;
      let n =
        match count with
        | Count_imm n -> n
        | Count_cl -> Int64.to_int (Int64.logand (get_reg t RCX) 0x3FL)
      in
      let n = n land (width_bits w - 1) in
      let a = read_operand t w dst in
      let bits = width_bits w in
      let masked = Int64.logand a (mask_of_width w) in
      let r =
        match op with
        | Shl -> Int64.shift_left a n
        | Shr -> Int64.shift_right_logical masked n
        | Sar -> Int64.shift_right (sext w a) n
        | Rol ->
            if n = 0 then a
            else
              Int64.logor (Int64.shift_left masked n)
                (Int64.shift_right_logical masked (bits - n))
        | Ror ->
            if n = 0 then a
            else
              Int64.logor
                (Int64.shift_right_logical masked n)
                (Int64.shift_left masked (bits - n))
      in
      set_logic_flags t w r;
      write_operand t w dst r
  | Imul (w, dst, src) ->
      charge t cost.Cost.mul_cycles;
      let r = Int64.mul (read_reg_w t w dst) (read_operand t w src) in
      write_reg_w t w dst r
  | Bitcnt (k, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      let v = Int64.logand (read_operand t w src) (mask_of_width w) in
      let bits = width_bits w in
      let count =
        match k with
        | Popcnt ->
            let n = ref 0 and x = ref v in
            for _ = 1 to 64 do
              if Int64.logand !x 1L = 1L then incr n;
              x := Int64.shift_right_logical !x 1
            done;
            !n
        | Tzcnt ->
            if v = 0L then bits
            else begin
              let n = ref 0 and x = ref v in
              while Int64.logand !x 1L = 0L do
                incr n;
                x := Int64.shift_right_logical !x 1
              done;
              !n
            end
        | Lzcnt ->
            if v = 0L then bits
            else begin
              let n = ref 0 in
              let top = Int64.shift_left 1L (bits - 1) in
              let x = ref v in
              while Int64.logand !x top = 0L do
                incr n;
                x := Int64.shift_left !x 1
              done;
              !n
            end
      in
      write_reg_w t w dst (Int64.of_int count)
  | Div (w, signed, src) -> exec_div t w signed src
  | Cqo w ->
      charge t cost.Cost.alu_cycles;
      let a = sext w (read_reg_w t w RAX) in
      write_reg_w t w RDX (if Int64.compare a 0L < 0 then -1L else 0L)
  | Neg (w, op) ->
      charge t cost.Cost.alu_cycles;
      let a = read_operand t w op in
      let r = Int64.neg a in
      set_sub_flags t w 0L a r;
      write_operand t w op r
  | Not (w, op) ->
      charge t cost.Cost.alu_cycles;
      write_operand t w op (Int64.lognot (read_operand t w op))
  | Cmp (w, a, b) ->
      charge t cost.Cost.alu_cycles;
      let va = read_operand t w a and vb = read_operand t w b in
      set_sub_flags t w va vb (Int64.sub va vb)
  | Test (w, a, b) ->
      charge t cost.Cost.alu_cycles;
      let va = read_operand t w a and vb = read_operand t w b in
      set_logic_flags t w (Int64.logand va vb)
  | Setcc (c, r) ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (if eval_cond t c then 1L else 0L)
  | Cmovcc (c, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      if eval_cond t c then write_reg_w t w dst (read_operand t w src)
      else if w = W32 then
        (* Hardware quirk: cmov with a 32-bit destination zero-extends even
           when the move does not happen. *)
        write_reg_w t w dst (read_reg_w t w dst)
  | Jmp lbl ->
      charge t (cost.Cost.branch_cycles + cost.Cost.taken_branch_cycles);
      next_pc := label_index t lbl
  | Jcc (c, lbl) ->
      charge t cost.Cost.branch_cycles;
      if eval_cond t c then begin
        charge t cost.Cost.taken_branch_cycles;
        next_pc := label_index t lbl
      end
  | Jmp_reg r ->
      charge t cost.Cost.indirect_branch_cycles;
      jump_to_address t (Int64.to_int (get_reg t r) land addr_mask_47);
      next_pc := t.pc
  | Call lbl ->
      charge t cost.Cost.call_ret_cycles;
      push64 t (return_address t);
      next_pc := label_index t lbl
  | Call_reg r ->
      charge t (cost.Cost.call_ret_cycles + cost.Cost.indirect_branch_cycles);
      push64 t (return_address t);
      jump_to_address t (Int64.to_int (get_reg t r) land addr_mask_47);
      next_pc := t.pc
  | Ret ->
      charge t cost.Cost.call_ret_cycles;
      let addr = pop64 t in
      if addr = halt_sentinel then raise Halt_exn;
      jump_to_address t (Int64.to_int addr land addr_mask_47);
      next_pc := t.pc
  | Push op ->
      charge t cost.Cost.store_cycles;
      push64 t (read_operand t W64 op)
  | Pop r ->
      charge t cost.Cost.load_cycles;
      set_reg t r (pop64 t)
  | Wrfsbase r | Wrgsbase r ->
      charge t
        (if t.fsgsbase_available then cost.Cost.wrsegbase_cycles
         else cost.Cost.wrsegbase_syscall_cycles);
      t.counters.seg_base_writes <- t.counters.seg_base_writes + 1;
      let v = Int64.to_int (get_reg t r) land addr_mask_47 in
      (match instr with Wrfsbase _ -> t.fs_base <- v | _ -> t.gs_base <- v)
  | Rdfsbase r ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (Int64.of_int t.fs_base)
  | Rdgsbase r ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (Int64.of_int t.gs_base)
  | Wrpkru ->
      charge t cost.Cost.wrpkru_cycles;
      t.counters.pkru_writes <- t.counters.pkru_writes + 1;
      t.pkru <- Int64.to_int (Int64.logand (get_reg t RAX) 0xFFFFFFFFL)
  | Rdpkru ->
      charge t cost.Cost.alu_cycles;
      set_reg t RAX (Int64.of_int t.pkru);
      set_reg t RDX 0L
  | Vload (v, m) ->
      charge t cost.Cost.vector_cycles;
      let addr = effective_address t m in
      check_access t ~addr ~len:16 ~write:false;
      t.counters.loads <- t.counters.loads + 1;
      let data = Space.read_bytes t.space ~addr ~len:16 in
      Bytes.blit data 0 t.vregs.(vreg_index v) 0 16
  | Vstore (m, v) ->
      charge t cost.Cost.vector_cycles;
      let addr = effective_address t m in
      check_access t ~addr ~len:16 ~write:true;
      t.counters.stores <- t.counters.stores + 1;
      Space.write_bytes t.space ~addr (Bytes.copy t.vregs.(vreg_index v))
  | Vzero v ->
      charge t cost.Cost.vector_cycles;
      Bytes.fill t.vregs.(vreg_index v) 0 16 '\000'
  | Vdup8 (v, b) ->
      charge t cost.Cost.vector_cycles;
      Bytes.fill t.vregs.(vreg_index v) 0 16 (Char.chr (b land 0xFF))
  | Hostcall n ->
      charge t cost.Cost.hostcall_cycles;
      t.hostcall t n
  | Trap k -> raise (Trap_exn k));
  t.pc <- !next_pc

let start t ~entry =
  t.last_fault <- None;
  t.pc <- label_index t entry;
  push64 t halt_sentinel

let last_fault_info t = t.last_fault

let run t ~fuel =
  let budget = ref fuel in
  let result = ref None in
  (try
     while !result = None do
       if !budget <= 0 then result := Some Yielded
       else begin
         decr budget;
         step t
       end
     done
   with
  | Halt_exn -> result := Some Halted
  | Hostcall_exit _ -> result := Some Halted
  | Trap_exn k -> result := Some (Trapped k));
  match !result with Some s -> s | None -> assert false

let execute t ~entry ?(fuel = 1 lsl 30) () =
  start t ~entry;
  run t ~fuel

let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.instructions <- 0;
  c.cycles <- 0;
  c.loads <- 0;
  c.stores <- 0;
  c.code_bytes <- 0;
  c.seg_base_writes <- 0;
  c.pkru_writes <- 0;
  t.fetch_accum <- 0;
  Tlb.reset_counters t.tlb;
  Tlb.reset_counters t.dcache

type context = {
  c_regs : int64 array;
  c_vregs : Bytes.t array;
  c_fs : int;
  c_gs : int;
  c_pkru : int;
  c_zf : bool;
  c_sf : bool;
  c_cf : bool;
  c_of : bool;
  c_pc : int;
  c_fetch : int;
}

let save_context t =
  {
    c_regs = Array.copy t.regs;
    c_vregs = Array.map Bytes.copy t.vregs;
    c_fs = t.fs_base;
    c_gs = t.gs_base;
    c_pkru = t.pkru;
    c_zf = t.zf;
    c_sf = t.sf;
    c_cf = t.cf;
    c_of = t.of_;
    c_pc = t.pc;
    c_fetch = t.fetch_accum;
  }

let restore_context t c =
  Array.blit c.c_regs 0 t.regs 0 16;
  Array.iteri (fun i b -> Bytes.blit c.c_vregs.(i) 0 b 0 16) t.vregs;
  t.fs_base <- c.c_fs;
  t.gs_base <- c.c_gs;
  t.pkru <- c.c_pkru;
  t.zf <- c.c_zf;
  t.sf <- c.c_sf;
  t.cf <- c.c_cf;
  t.of_ <- c.c_of;
  t.pc <- c.c_pc;
  t.fetch_accum <- c.c_fetch

let dtlb_misses t = Tlb.misses t.tlb
let dtlb_hits t = Tlb.hits t.tlb
let elapsed_ns t = Cost.ns_of_cycles t.cost t.counters.cycles
let flush_tlb t =
  Tlb.flush t.tlb;
  Tlb.flush t.dcache

let dcache_misses t = Tlb.misses t.dcache
