(* Tier-1 translation: [install] compiles each instruction once into an
   [exec : t -> unit] closure with operands, widths, branch targets, encoded
   lengths and return addresses pre-resolved, and partitions the program
   into classified basic blocks for the superblock tier. The closures must
   reproduce [Decode.step]'s observable behavior exactly — same counters,
   same charge order, same traps — which {!Lockstep} checks instruction by
   instruction. *)

open Sfi_x86.Ast
open Mstate
open Decode
module Encode = Sfi_x86.Encode

let compile_read_reg w r =
  let i = gpr_index r in
  match w with
  | W64 -> fun t -> reg_get t i
  | W32 -> fun t -> Int64.logand (reg_get t i) 0xFFFFFFFFL
  | W16 -> fun t -> Int64.logand (reg_get t i) 0xFFFFL
  | W8 -> fun t -> Int64.logand (reg_get t i) 0xFFL

let compile_write_reg w r =
  let i = gpr_index r in
  match w with
  | W64 -> fun t v -> reg_set t i v
  | W32 -> fun t v -> reg_set t i (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
      fun t v ->
        reg_set t i
          (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFFFL)) (Int64.logand v 0xFFFFL))
  | W8 ->
      fun t v ->
        reg_set t i
          (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFL)) (Int64.logand v 0xFFL))

let compile_index = function
  | Some (r, s) ->
      let i = gpr_index r and f = Int64.of_int (scale_factor s) in
      fun t -> Int64.mul (reg_get t i) f
  | None -> fun _ -> 0L

let compile_ea (m : mem) =
  let base_i = match m.base with Some r -> gpr_index r | None -> -1 in
  let index_part = compile_index m.index in
  let disp = Int64.of_int m.disp in
  let mask32 = m.addr32 && not m.native_base in
  let native = m.native_base in
  let seg = m.seg in
  fun t ->
    let base = if base_i >= 0 then reg_get t base_i else 0L in
    let sum = Int64.add (Int64.add base (index_part t)) disp in
    let sum = if mask32 then Int64.logand sum 0xFFFFFFFFL else sum in
    let segv =
      if native then t.gs_base else match seg with Some s -> get_seg_base t s | None -> 0
    in
    Int64.to_int (Int64.add (Int64.of_int segv) sum) land addr_mask_47

let compile_lea (m : mem) =
  let base_i = match m.base with Some r -> gpr_index r | None -> -1 in
  let index_part = compile_index m.index in
  let disp = Int64.of_int m.disp in
  let mask32 = m.addr32 in
  fun t ->
    let base = if base_i >= 0 then reg_get t base_i else 0L in
    let sum = Int64.add (Int64.add base (index_part t)) disp in
    if mask32 then Int64.logand sum 0xFFFFFFFFL else sum

let compile_read w op =
  match op with
  | Reg r -> compile_read_reg w r
  | Imm i ->
      let v =
        match w with
        | W64 -> i
        | W32 -> Int64.logand i 0xFFFFFFFFL
        | W16 -> Int64.logand i 0xFFFFL
        | W8 -> Int64.logand i 0xFFL
      in
      fun _ -> v
  | Mem m ->
      let ea = compile_ea m in
      fun t -> load_mem t w (ea t)

let compile_write w op =
  match op with
  | Reg r -> compile_write_reg w r
  | Mem m ->
      let ea = compile_ea m in
      fun t v -> store_mem t w (ea t) v
  | Imm _ -> fun _ _ -> invalid_arg "Machine: immediate as destination"

let compile_instr ~labels ~index_of_off ~code_base ~len ~next ~ret_addr (instr : instr) =
  let target lbl = match Hashtbl.find_opt labels lbl with Some i -> i | None -> -1 in
  let prologue t =
    t.counters.instructions <- t.counters.instructions + 1;
    charge_frontend t len
  in
  match instr with
  | Label _ -> fun t -> t.pc <- next
  | Nop ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        t.pc <- next
  | Mov (w, dst, src) ->
      let rd = compile_read w src and wr = compile_write w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (rd t);
        t.pc <- next
  | Movzx (dw, sw, dst, src) ->
      let rd = compile_read sw src and wr = compile_write_reg dw dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (rd t);
        t.pc <- next
  | Movsx (dw, sw, dst, src) ->
      let rd = compile_read sw src and wr = compile_write_reg dw dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (sext sw (rd t));
        t.pc <- next
  | Lea (w, dst, m) ->
      let lv = compile_lea m and wr = compile_write_reg w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.lea_cycles;
        wr t (lv t);
        t.pc <- next
  | Alu (op, w, dst, src) ->
      let rd = compile_read w dst and rs = compile_read w src and wr = compile_write w dst in
      let f =
        match op with
        | Add -> Int64.add
        | Sub -> Int64.sub
        | And -> Int64.logand
        | Or -> Int64.logor
        | Xor -> Int64.logxor
      in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let a = rd t and b = rs t in
        let r = f a b in
        (match op with
        | Add -> set_add_flags t w a b r
        | Sub -> set_sub_flags t w a b r
        | And | Or | Xor -> set_logic_flags t w r);
        wr t r;
        t.pc <- next
  | Shift (op, w, dst, count) ->
      let rd = compile_read w dst and wr = compile_write w dst in
      let rcx = gpr_index RCX in
      let get_n =
        match count with
        | Count_imm n -> fun _ -> n
        | Count_cl -> fun t -> Int64.to_int (Int64.logand (reg_get t rcx) 0x3FL)
      in
      let nmask = width_bits w - 1 in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let n = get_n t land nmask in
        let a = rd t in
        let r = shift_value w op a n in
        set_logic_flags t w r;
        wr t r;
        t.pc <- next
  | Imul (w, dst, src) ->
      let rdd = compile_read_reg w dst and rs = compile_read w src in
      let wr = compile_write_reg w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.mul_cycles;
        let b = rs t in
        wr t (Int64.mul (rdd t) b);
        t.pc <- next
  | Bitcnt (k, w, dst, src) ->
      let rs = compile_read w src and wr = compile_write_reg w dst in
      let m = mask_of_width w in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let v = Int64.logand (rs t) m in
        wr t (Int64.of_int (bitcnt_value k w v));
        t.pc <- next
  | Div (w, signed, src) ->
      let rs = compile_read w src in
      fun t ->
        prologue t;
        exec_div t w signed ~read:rs;
        t.pc <- next
  | Cqo w ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let a = sext w (read_reg_w t w RAX) in
        write_reg_w t w RDX (if Int64.compare a 0L < 0 then -1L else 0L);
        t.pc <- next
  | Neg (w, op) ->
      let rd = compile_read w op and wr = compile_write w op in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let a = rd t in
        let r = Int64.neg a in
        set_sub_flags t w 0L a r;
        wr t r;
        t.pc <- next
  | Not (w, op) ->
      let rd = compile_read w op and wr = compile_write w op in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (Int64.lognot (rd t));
        t.pc <- next
  | Cmp (w, a, b) ->
      let ra = compile_read w a and rb = compile_read w b in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let va = ra t and vb = rb t in
        set_sub_flags t w va vb (Int64.sub va vb);
        t.pc <- next
  | Test (w, a, b) ->
      let ra = compile_read w a and rb = compile_read w b in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let va = ra t and vb = rb t in
        set_logic_flags t w (Int64.logand va vb);
        t.pc <- next
  | Setcc (c, r) ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t i (if eval_cond t c then 1L else 0L);
        t.pc <- next
  | Cmovcc (c, w, dst, src) ->
      let rs = compile_read w src in
      let rdd = compile_read_reg w dst and wr = compile_write_reg w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        (if eval_cond t c then wr t (rs t) else if w = W32 then wr t (rdd t));
        t.pc <- next
  | Jmp lbl ->
      let tgt = target lbl in
      fun t ->
        prologue t;
        charge t (t.cost.Cost.branch_cycles + t.cost.Cost.taken_branch_cycles);
        if tgt < 0 then raise Not_found;
        t.pc <- tgt
  | Jcc (c, lbl) ->
      let tgt = target lbl in
      fun t ->
        prologue t;
        charge t t.cost.Cost.branch_cycles;
        if eval_cond t c then begin
          charge t t.cost.Cost.taken_branch_cycles;
          if tgt < 0 then raise Not_found;
          t.pc <- tgt
        end
        else t.pc <- next
  | Jmp_reg r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.indirect_branch_cycles;
        jump_via index_of_off code_base t (Int64.to_int (reg_get t i) land addr_mask_47)
  | Call lbl ->
      let tgt = target lbl in
      fun t ->
        prologue t;
        charge t t.cost.Cost.call_ret_cycles;
        push64 t ret_addr;
        if tgt < 0 then raise Not_found;
        t.pc <- tgt
  | Call_reg r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t (t.cost.Cost.call_ret_cycles + t.cost.Cost.indirect_branch_cycles);
        push64 t ret_addr;
        jump_via index_of_off code_base t (Int64.to_int (reg_get t i) land addr_mask_47)
  | Ret ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.call_ret_cycles;
        let addr = pop64 t in
        if addr = halt_sentinel then raise Halt_exn;
        jump_via index_of_off code_base t (Int64.to_int addr land addr_mask_47)
  | Push op ->
      let rd = compile_read W64 op in
      fun t ->
        prologue t;
        charge t t.cost.Cost.store_cycles;
        push64 t (rd t);
        t.pc <- next
  | Pop r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.load_cycles;
        reg_set t i (pop64 t);
        t.pc <- next
  | Wrfsbase r | Wrgsbase r ->
      let i = gpr_index r in
      let is_fs = match instr with Wrfsbase _ -> true | _ -> false in
      fun t ->
        prologue t;
        charge t
          (if t.fsgsbase_available then t.cost.Cost.wrsegbase_cycles
           else t.cost.Cost.wrsegbase_syscall_cycles);
        t.counters.seg_base_writes <- t.counters.seg_base_writes + 1;
        let v = Int64.to_int (reg_get t i) land addr_mask_47 in
        if is_fs then t.fs_base <- v else t.gs_base <- v;
        t.pc <- next
  | Rdfsbase r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t i (Int64.of_int t.fs_base);
        t.pc <- next
  | Rdgsbase r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t i (Int64.of_int t.gs_base);
        t.pc <- next
  | Wrpkru ->
      let rax = gpr_index RAX in
      fun t ->
        prologue t;
        charge t t.cost.Cost.wrpkru_cycles;
        t.counters.pkru_writes <- t.counters.pkru_writes + 1;
        t.pkru <- Int64.to_int (Int64.logand (reg_get t rax) 0xFFFFFFFFL);
        invalidate_pcache t;
        if Sfi_trace.Trace.enabled t.trace then
          Sfi_trace.Trace.pkru_write t.trace ~value:t.pkru;
        t.pc <- next
  | Rdpkru ->
      let rax = gpr_index RAX and rdx = gpr_index RDX in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t rax (Int64.of_int t.pkru);
        reg_set t rdx 0L;
        t.pc <- next
  | Vload (v, m) ->
      let ea = compile_ea m and vi = vreg_index v in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        vload_data t vi (ea t);
        t.pc <- next
  | Vstore (m, v) ->
      let ea = compile_ea m and vi = vreg_index v in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        vstore_data t (ea t) vi;
        t.pc <- next
  | Vzero v ->
      let vi = vreg_index v in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        Bytes.fill t.vregs.(vi) 0 16 '\000';
        t.pc <- next
  | Vdup8 (v, b) ->
      let vi = vreg_index v and c = Char.chr (b land 0xFF) in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        Bytes.fill t.vregs.(vi) 0 16 c;
        t.pc <- next
  | Hostcall n ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.hostcall_cycles;
        t.hostcall t n;
        t.pc <- next
  | Trap k ->
      fun t ->
        prologue t;
        raise (Trap_exn k)

(* --- Basic-block discovery and classification --- *)

(* Instructions that end a basic block. Hostcall/Wrpkru fall through but
   terminate anyway so their hazard/bypass class does not poison the
   surrounding straight-line code. *)
let is_terminator = function
  | Jmp _ | Jcc _ | Jmp_reg _ | Call _ | Call_reg _ | Ret | Hostcall _ | Trap _ | Wrpkru ->
      true
  | _ -> false

let class_rank = function Bpure -> 0 | Bload -> 1 | Bhazard -> 2 | Bbypass -> 3
let class_max a b = if class_rank a >= class_rank b then a else b

let instr_class ~targets idx (i : instr) =
  match i with
  | Label _ | Nop | Lea _ | Cqo _ | Setcc _ | Rdfsbase _ | Rdgsbase _ | Rdpkru | Wrfsbase _
  | Wrgsbase _ | Vzero _ | Vdup8 _ ->
      Bpure
  | Mov (_, dst, src) -> (
      match (dst, src) with Mem _, _ -> Bhazard | _, Mem _ -> Bload | _ -> Bpure)
  | Movzx (_, _, _, src) | Movsx (_, _, _, src) | Imul (_, _, src) | Bitcnt (_, _, _, src)
  | Cmovcc (_, _, _, src) -> (
      match src with Mem _ -> Bload | _ -> Bpure)
  | Alu (_, _, dst, src) -> (
      match (dst, src) with Mem _, _ -> Bhazard | _, Mem _ -> Bload | _ -> Bpure)
  | Shift (_, _, dst, _) | Neg (_, dst) | Not (_, dst) -> (
      match dst with Mem _ -> Bhazard | _ -> Bpure)
  | Cmp (_, a, b) | Test (_, a, b) -> (
      match (a, b) with Mem _, _ | _, Mem _ -> Bload | _ -> Bpure)
  (* Division can trap even register-to-register; the rollback side table
     handles it, so it rides in the no-store class. *)
  | Div _ | Pop _ | Ret | Vload _ -> Bload
  | Push _ | Vstore _ | Call_reg _ | Jmp_reg _ | Wrpkru -> Bhazard
  (* Direct branches with an unresolved label raise [Not_found] from the
     middle of a block; keep those on the tier-1 dispatcher. *)
  | Jmp _ | Jcc _ -> if targets.(idx) >= 0 then Bpure else Bbypass
  | Call _ -> if targets.(idx) >= 0 then Bhazard else Bbypass
  | Hostcall _ | Trap _ -> Bbypass

let analyze_blocks program targets =
  let n = Array.length program in
  let leader = Array.make (n + 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun idx i ->
      (match i with Label _ -> leader.(idx) <- true | _ -> ());
      if is_terminator i && idx + 1 < n then leader.(idx + 1) <- true)
    program;
  let blocks = ref [] in
  let block_of = Array.make n (-1) in
  let bi = ref 0 in
  let i = ref 0 in
  while !i < n do
    let s = !i in
    let j = ref (s + 1) in
    while !j < n && not leader.(!j) do
      incr j
    done;
    let cls = ref Bpure in
    for k = s to !j - 1 do
      cls := class_max !cls (instr_class ~targets k program.(k));
      block_of.(k) <- !bi
    done;
    blocks := { b_start = s; b_len = !j - s; b_class = !cls } :: !blocks;
    incr bi;
    i := !j
  done;
  (Array.of_list (List.rev !blocks), block_of)

(* --- Program installation (the body of [Machine.load_program]) --- *)

let install t program =
  let offsets = Encode.layout program in
  let labels = Hashtbl.create 64 in
  Array.iteri
    (fun idx i ->
      match i with
      | Label l ->
          if Hashtbl.mem labels l then invalid_arg ("Machine.load_program: duplicate label " ^ l);
          Hashtbl.replace labels l idx
      | _ -> ())
    program;
  let code_len = Encode.program_length program in
  let n = Array.length program in
  let lengths = Encode.lengths program in
  (* First instruction at a given byte offset wins (labels share the offset
     of the instruction that follows them). *)
  let index_of_off = Array.make (code_len + 1) (-1) in
  Array.iteri (fun idx off -> if index_of_off.(off) < 0 then index_of_off.(off) <- idx) offsets;
  let targets =
    Array.map
      (function
        | Jmp l | Jcc (_, l) | Call l -> (
            match Hashtbl.find_opt labels l with Some i -> i | None -> -1)
        | _ -> -1)
      program
  in
  let ret_addrs =
    Array.init n (fun idx ->
        let off = if idx + 1 < n then offsets.(idx + 1) else code_len in
        Int64.of_int (t.code_base + off))
  in
  (* exec.(n) is the off-end sentinel: running past the last instruction is
     an out-of-bounds fetch, exactly as [step] treats pc >= n. *)
  let exec = Array.make (n + 1) (fun _ -> raise (Trap_exn Trap_out_of_bounds)) in
  for idx = 0 to n - 1 do
    exec.(idx) <-
      compile_instr ~labels ~index_of_off ~code_base:t.code_base ~len:lengths.(idx)
        ~next:(idx + 1) ~ret_addr:ret_addrs.(idx) program.(idx)
  done;
  let blocks, block_of = analyze_blocks program targets in
  t.loaded <-
    Some
      {
        program;
        offsets;
        labels;
        code_len;
        lengths;
        targets;
        ret_addrs;
        index_of_off;
        exec;
        blocks;
        block_of;
        sb_len = Array.make (n + 1) 0;
        sb_exec = Array.make (n + 1) (fun _ -> ());
        promoted = 0;
      };
  (* Samples collected against the replaced program describe instruction
     indices that no longer mean anything; they are dropped, and the loss
     is visible through [prof_dropped] whether or not the profiler is
     still armed. The histogram is resized for the new program (index n =
     off-end sentinel) when armed, and cleared when disarmed so stale
     counts can never be attributed to the new program's labels. *)
  let stale = Array.fold_left ( + ) 0 t.prof_counts in
  if stale > 0 then t.prof_dropped <- t.prof_dropped + stale;
  if t.prof_interval > 0 then t.prof_counts <- Array.make (n + 1) 0
  else if Array.length t.prof_counts > 0 then t.prof_counts <- [||];
  t.prof_total <- 0;
  t.prof_last_scan <- 0;
  t.pc <- 0

let run_threaded t ~fuel =
  let l = get_loaded t in
  let code = l.exec in
  if fuel <= 0 then Yielded
  else if t.pc < 0 || t.pc > Array.length l.program then
    (* [step] would trap here; once inside the loop the closures maintain
       pc within [0, n] (index n being the off-end sentinel). *)
    Trapped Trap_out_of_bounds
  else begin
    let budget = ref fuel in
    try
      if t.prof_interval > 0 then begin
        (* Separate sampling loop so the default path below keeps its
           tight two-load dispatch. *)
        while !budget > 0 do
          decr budget;
          code.(t.pc) t;
          prof_sample t
        done;
        Yielded
      end
      else begin
        while !budget > 0 do
          decr budget;
          code.(t.pc) t
        done;
        Yielded
      end
    with
    | Halt_exn | Hostcall_exit _ -> Halted
    | Trap_exn k -> Trapped k
  end
