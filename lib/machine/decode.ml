(* Decode/execute primitives shared by every engine: effective addresses,
   TLB/MPK-checked memory access with the page/dcache fast paths, operand
   evaluation, flags, and the pure value helpers — plus [step], the
   AST-matching reference interpreter that defines observable behavior.
   The threaded compiler ([Translate]) and the superblock tier ([Tier])
   must reproduce everything here bit-identically. *)

open Sfi_x86.Ast
open Mstate
module Space = Sfi_vmem.Space
module Tlb = Sfi_vmem.Tlb
module Mpk = Sfi_vmem.Mpk

(* --- Effective addresses --- *)

let addr_mask_47 = (1 lsl 47) - 1

let effective_address t (m : mem) =
  let base = match m.base with Some r -> reg_get t (gpr_index r) | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) -> Int64.mul (reg_get t (gpr_index r)) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let sum = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  let sum = if m.addr32 && not m.native_base then Int64.logand sum 0xFFFFFFFFL else sum in
  let seg =
    if m.native_base then t.gs_base
    else match m.seg with Some s -> get_seg_base t s | None -> 0
  in
  Int64.to_int (Int64.add (Int64.of_int seg) sum) land addr_mask_47

(* Lea computes the address expression but never adds the segment base and
   never touches memory. *)
let lea_value t (m : mem) =
  let base = match m.base with Some r -> reg_get t (gpr_index r) | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) -> Int64.mul (reg_get t (gpr_index r)) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let sum = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  if m.addr32 then Int64.logand sum 0xFFFFFFFFL else sum

(* --- Memory access with TLB and MPK --- *)

(* TLB payload: bits 0-1 = read/write permission, bits 3+ = pkey. *)
let payload_of prot key =
  (if (prot : Sfi_vmem.Prot.t).read then 1 else 0)
  lor (if prot.Sfi_vmem.Prot.write then 2 else 0)
  lor (key lsl 3)

let check_tlb_generation t =
  let g = Space.generation t.space in
  if g <> t.space_generation then begin
    Tlb.flush t.tlb;
    t.space_generation <- g;
    invalidate_pcache t
  end

(* Full TLB walk for [page]; counter effects identical to the pre-cache
   interpreter. Returns the TLB slot plus both access verdicts (protection
   AND current PKRU) so the fast path can reuse them. *)
let check_page_slow t ~page ~write =
  match Tlb.lookup_slot t.tlb ~page with
  | Some (payload, slot) ->
      let key = payload lsr 3 in
      let read_ok = payload land 1 <> 0 && Mpk.allows t.pkru ~key ~write:false in
      let write_ok = payload land 2 <> 0 && Mpk.allows t.pkru ~key ~write:true in
      if not (if write then write_ok else read_ok) then raise (Trap_exn Trap_out_of_bounds);
      (slot, read_ok, write_ok)
  | None -> (
      t.counters.cycles <- t.counters.cycles + Tlb.walk_cost t.tlb;
      match Space.page_info t.space ~addr:(page * Space.page_size) with
      | None -> raise (Trap_exn Trap_out_of_bounds)
      | Some (prot, key) ->
          let slot = Tlb.fill_slot t.tlb ~page ~payload:(payload_of prot key) in
          let read_ok = prot.Sfi_vmem.Prot.read && Mpk.allows t.pkru ~key ~write:false in
          let write_ok = prot.Sfi_vmem.Prot.write && Mpk.allows t.pkru ~key ~write:true in
          if not (if write then write_ok else read_ok) then raise (Trap_exn Trap_out_of_bounds);
          (slot, read_ok, write_ok))

let touch_dcache t addr =
  let line = addr lsr 6 in
  let idx = line land lc_mask in
  if Array.unsafe_get t.lc_tag idx = line
     && Tlb.holds t.dcache ~slot:(Array.unsafe_get t.lc_slot idx) ~page:line
  then Tlb.touch t.dcache ~slot:(Array.unsafe_get t.lc_slot idx)
  else begin
    (match Tlb.lookup_slot t.dcache ~page:line with
    | Some (_, slot) -> Array.unsafe_set t.lc_slot idx slot
    | None ->
        t.counters.cycles <- t.counters.cycles + t.cost.Cost.dcache_miss_cycles;
        Array.unsafe_set t.lc_slot idx (Tlb.fill_slot t.dcache ~page:line ~payload:0));
    Array.unsafe_set t.lc_tag idx line
  end

let check_access t ~addr ~len ~write =
  try
    check_tlb_generation t;
    let first = addr lsr 12 and last = (addr + len - 1) lsr 12 in
    let idx = first land pc_mask in
    (if Array.unsafe_get t.pc_tag idx = first
        && Tlb.holds t.tlb ~slot:(Array.unsafe_get t.pc_slot idx) ~page:first
     then begin
       (* Repeat access to a cached page: model the TLB hit without the
          set scan, then apply the pre-baked verdict. *)
       Tlb.touch t.tlb ~slot:(Array.unsafe_get t.pc_slot idx);
       if
         not
           (if write then Array.unsafe_get t.pc_write_ok idx
            else Array.unsafe_get t.pc_read_ok idx)
       then raise (Trap_exn Trap_out_of_bounds)
     end
     else begin
       let slot, read_ok, write_ok = check_page_slow t ~page:first ~write in
       Array.unsafe_set t.pc_tag idx first;
       Array.unsafe_set t.pc_slot idx slot;
       Array.unsafe_set t.pc_read_ok idx read_ok;
       Array.unsafe_set t.pc_write_ok idx write_ok;
       Array.unsafe_set t.pc_bepoch idx (-1)
     end);
    if last <> first then ignore (check_page_slow t ~page:last ~write);
    touch_dcache t addr;
    if (addr + len - 1) lsr 6 <> addr lsr 6 then touch_dcache t (addr + len - 1);
    (* Every architectural check passed: give the sanitizer (if armed) a
       chance to flag an access that is legal for the hardware but illegal
       for the owning sandbox. An access that trapped above never reaches
       this point — it is already contained and attributed precisely. *)
    match t.sanitizer with
    | None -> ()
    | Some f -> f t ~kind:(if write then San_write else San_read) ~addr ~len
  with Trap_exn _ as e ->
    t.last_fault <- Some { fault_addr = addr; fault_write = write };
    raise e

(* Backing bytes of a cached page for reading/writing. Only call when
   [check_access] just succeeded for an access contained in [page] — that
   guarantees the entry's tag is [page], so a live byte epoch always
   describes this page's backing store. The data epoch guards against the
   store changing identity underneath us (fresh page materialization,
   madvise, unmap). *)
let ro_bytes t page =
  let idx = page land pc_mask in
  let epoch = Space.data_epoch t.space in
  if Array.unsafe_get t.pc_bepoch idx = epoch then Array.unsafe_get t.pc_bytes idx
  else begin
    let b = Space.page_for_read t.space ~page in
    Array.unsafe_set t.pc_bytes idx b;
    Array.unsafe_set t.pc_bwritable idx false;
    Array.unsafe_set t.pc_bepoch idx epoch;
    b
  end

let rw_bytes t page =
  let idx = page land pc_mask in
  let epoch = Space.data_epoch t.space in
  if Array.unsafe_get t.pc_bepoch idx = epoch && Array.unsafe_get t.pc_bwritable idx then
    Array.unsafe_get t.pc_bytes idx
  else begin
    let b = Space.page_for_write t.space ~page in
    Array.unsafe_set t.pc_bytes idx b;
    Array.unsafe_set t.pc_bwritable idx true;
    (* Read the epoch after materializing: allocation bumps it. *)
    Array.unsafe_set t.pc_bepoch idx (Space.data_epoch t.space);
    b
  end

let page_mask = Space.page_size - 1

let load_mem t w addr =
  let len = width_bytes w in
  check_access t ~addr ~len ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  t.counters.cycles <- t.counters.cycles + t.cost.Cost.load_cycles;
  let off = addr land page_mask in
  if off + len <= Space.page_size then
    let b = ro_bytes t (addr lsr 12) in
    match w with
    | W8 -> Int64.of_int (Char.code (Bytes.get b off))
    | W16 -> Int64.of_int (Bytes.get_uint16_le b off)
    | W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xFFFFFFFFL
    | W64 -> Bytes.get_int64_le b off
  else
    match w with
    | W8 -> Int64.of_int (Space.read8 t.space addr)
    | W16 -> Int64.of_int (Space.read16 t.space addr)
    | W32 -> Int64.logand (Int64.of_int32 (Space.read32 t.space addr)) 0xFFFFFFFFL
    | W64 -> Space.read64 t.space addr

let store_mem t w addr v =
  let len = width_bytes w in
  check_access t ~addr ~len ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  t.counters.cycles <- t.counters.cycles + t.cost.Cost.store_cycles;
  let off = addr land page_mask in
  if off + len <= Space.page_size then begin
    let b = rw_bytes t (addr lsr 12) in
    match w with
    | W8 -> Bytes.set b off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | W16 -> Bytes.set_uint16_le b off (Int64.to_int (Int64.logand v 0xFFFFL))
    | W32 -> Bytes.set_int32_le b off (Int64.to_int32 v)
    | W64 -> Bytes.set_int64_le b off v
  end
  else
    match w with
    | W8 -> Space.write8 t.space addr (Int64.to_int (Int64.logand v 0xFFL))
    | W16 -> Space.write16 t.space addr (Int64.to_int (Int64.logand v 0xFFFFL))
    | W32 -> Space.write32 t.space addr (Int64.to_int32 v)
    | W64 -> Space.write64 t.space addr v

(* --- Operand evaluation --- *)

let read_operand t w = function
  | Reg r -> read_reg_w t w r
  | Imm i -> (
      match w with
      | W64 -> i
      | W32 -> Int64.logand i 0xFFFFFFFFL
      | W16 -> Int64.logand i 0xFFFFL
      | W8 -> Int64.logand i 0xFFL)
  | Mem m -> load_mem t w (effective_address t m)

let write_operand t w op v =
  match op with
  | Reg r -> write_reg_w t w r v
  | Mem m -> store_mem t w (effective_address t m) v
  | Imm _ -> invalid_arg "Machine: immediate as destination"

(* --- Flags --- *)

let width_bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let mask_of_width = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFFFFFFL
  | W64 -> -1L

let sign_bit w v = Int64.logand v (Int64.shift_left 1L (width_bits w - 1)) <> 0L

let set_logic_flags t w r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  t.cf <- false;
  t.of_ <- false

let set_add_flags t w a b r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  (if w = W64 then t.cf <- Int64.unsigned_compare r a < 0
   else
     let ua = Int64.logand a (mask_of_width w) and ub = Int64.logand b (mask_of_width w) in
     t.cf <- Int64.unsigned_compare (Int64.add ua ub) (mask_of_width w) > 0);
  t.of_ <- sign_bit w a = sign_bit w b && sign_bit w r <> sign_bit w a

let set_sub_flags t w a b r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  (let ua = Int64.logand a (mask_of_width w) and ub = Int64.logand b (mask_of_width w) in
   t.cf <- Int64.unsigned_compare ua ub < 0);
  t.of_ <- sign_bit w a <> sign_bit w b && sign_bit w r <> sign_bit w a

let eval_cond t = function
  | E -> t.zf
  | NE -> not t.zf
  | L -> t.sf <> t.of_
  | GE -> t.sf = t.of_
  | LE -> t.zf || t.sf <> t.of_
  | G -> (not t.zf) && t.sf = t.of_
  | B -> t.cf
  | AE -> not t.cf
  | BE -> t.cf || t.zf
  | A -> (not t.cf) && not t.zf
  | S -> t.sf
  | NS -> not t.sf

(* --- Sign extension helper for Movsx / division --- *)

let sext w v =
  match w with
  | W64 -> v
  | _ ->
      let bits = 64 - width_bits w in
      Int64.shift_right (Int64.shift_left v bits) bits

(* --- Execution --- *)

let charge t cycles = t.counters.cycles <- t.counters.cycles + cycles

let charge_frontend t len =
  t.counters.code_bytes <- t.counters.code_bytes + len;
  let bpc = t.cost.Cost.frontend_bytes_per_cycle in
  if bpc > 0 then begin
    let total = t.fetch_accum + len in
    (* [fetch_accum < bpc] always, and instructions are at most 15 bytes,
       so [total / bpc] is almost always 0 or 1: avoid the hardware divide
       on this per-instruction path. *)
    if total < bpc then t.fetch_accum <- total
    else if total - bpc < bpc then begin
      charge t 1;
      t.fetch_accum <- total - bpc
    end
    else begin
      charge t (total / bpc);
      t.fetch_accum <- total mod bpc
    end
  end

let push64 t v =
  let rsp = Int64.to_int (get_reg t RSP) - 8 in
  set_reg t RSP (Int64.of_int rsp);
  check_access t ~addr:rsp ~len:8 ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  if rsp land page_mask <= Space.page_size - 8 then
    Bytes.set_int64_le (rw_bytes t (rsp lsr 12)) (rsp land page_mask) v
  else Space.write64 t.space rsp v

let pop64 t =
  let rsp = Int64.to_int (get_reg t RSP) in
  check_access t ~addr:rsp ~len:8 ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  let v =
    if rsp land page_mask <= Space.page_size - 8 then
      Bytes.get_int64_le (ro_bytes t (rsp lsr 12)) (rsp land page_mask)
    else Space.read64 t.space rsp
  in
  set_reg t RSP (Int64.of_int (rsp + 8));
  v

let halt_sentinel = 0L

(* Resolve an absolute code byte address to an instruction index through the
   flat offset table (first instruction at a given address wins, as labels
   share the address of the instruction that follows them). *)
let jump_via index_of_off code_base t addr =
  (match t.sanitizer with
  | None -> ()
  | Some f -> f t ~kind:San_branch ~addr ~len:0);
  let off = addr - code_base in
  if off >= 0 && off < Array.length index_of_off && index_of_off.(off) >= 0 then
    t.pc <- index_of_off.(off)
  else raise (Trap_exn Trap_out_of_bounds)

let jump_to_address t addr =
  let l = get_loaded t in
  jump_via l.index_of_off t.code_base t addr

let return_address t =
  (* Byte address of the instruction after the current one. *)
  let l = get_loaded t in
  l.ret_addrs.(t.pc)

(* Pure value computations shared by the reference interpreter and the
   compiled closures, so the executors cannot drift. *)

let shift_value w op a n =
  let bits = width_bits w in
  let masked = Int64.logand a (mask_of_width w) in
  match op with
  | Shl -> Int64.shift_left a n
  | Shr -> Int64.shift_right_logical masked n
  | Sar -> Int64.shift_right (sext w a) n
  | Rol ->
      if n = 0 then a
      else Int64.logor (Int64.shift_left masked n) (Int64.shift_right_logical masked (bits - n))
  | Ror ->
      if n = 0 then a
      else Int64.logor (Int64.shift_right_logical masked n) (Int64.shift_left masked (bits - n))

let bitcnt_value k w v =
  let bits = width_bits w in
  match k with
  | Popcnt ->
      let n = ref 0 and x = ref v in
      for _ = 1 to 64 do
        if Int64.logand !x 1L = 1L then incr n;
        x := Int64.shift_right_logical !x 1
      done;
      !n
  | Tzcnt ->
      if v = 0L then bits
      else begin
        let n = ref 0 and x = ref v in
        while Int64.logand !x 1L = 0L do
          incr n;
          x := Int64.shift_right_logical !x 1
        done;
        !n
      end
  | Lzcnt ->
      if v = 0L then bits
      else begin
        let n = ref 0 in
        let top = Int64.shift_left 1L (bits - 1) in
        let x = ref v in
        while Int64.logand !x top = 0L do
          incr n;
          x := Int64.shift_left !x 1
        done;
        !n
      end

let div_by_zero = Trap_exn Trap_integer_divide_by_zero
let div_overflow = Trap_exn Trap_integer_overflow

(* Division semantics without the cycle charge — the superblock tier batches
   the charge at block entry and runs only this core. *)
let exec_div_core t w signed ~read =
  let divisor = read t in
  if signed then begin
    let a = sext w (read_reg_w t w RAX) in
    let b = sext w divisor in
    if b = 0L then raise div_by_zero;
    let min_w = Int64.shift_left 1L (width_bits w - 1) |> sext w in
    if a = min_w && b = -1L then raise div_overflow;
    write_reg_w t w RAX (Int64.div a b);
    write_reg_w t w RDX (Int64.rem a b)
  end
  else begin
    let a = read_reg_w t w RAX in
    let b = divisor in
    if b = 0L then raise div_by_zero;
    write_reg_w t w RAX (Int64.unsigned_div a b);
    write_reg_w t w RDX (Int64.unsigned_rem a b)
  end

let exec_div t w signed ~read =
  charge t t.cost.Cost.div_cycles;
  exec_div_core t w signed ~read

let vreg_index (XMM n) =
  if n < 0 || n > 15 then invalid_arg "Machine: bad xmm register";
  n

let vload_data t vi addr =
  check_access t ~addr ~len:16 ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  let off = addr land page_mask in
  if off <= Space.page_size - 16 then Bytes.blit (ro_bytes t (addr lsr 12)) off t.vregs.(vi) 0 16
  else begin
    let data = Space.read_bytes t.space ~addr ~len:16 in
    Bytes.blit data 0 t.vregs.(vi) 0 16
  end

let vstore_data t addr vi =
  check_access t ~addr ~len:16 ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  let off = addr land page_mask in
  if off <= Space.page_size - 16 then Bytes.blit t.vregs.(vi) 0 (rw_bytes t (addr lsr 12)) off 16
  else Space.write_bytes t.space ~addr (Bytes.copy t.vregs.(vi))

(* --- The reference interpreter --- *)

let step t =
  let l = get_loaded t in
  if t.pc < 0 || t.pc >= Array.length l.program then raise (Trap_exn Trap_out_of_bounds);
  let instr = l.program.(t.pc) in
  t.counters.instructions <- t.counters.instructions + 1;
  charge_frontend t l.lengths.(t.pc);
  let cost = t.cost in
  (* Direct-branch targets were resolved at load; -1 marks a label that did
     not exist, which surfaces as the same [Not_found] the per-step Hashtbl
     lookup used to raise. *)
  let direct_target () =
    let tgt = l.targets.(t.pc) in
    if tgt < 0 then raise Not_found;
    tgt
  in
  let next_pc = ref (t.pc + 1) in
  (match instr with
  | Label _ -> t.counters.instructions <- t.counters.instructions - 1
  | Nop -> charge t cost.Cost.alu_cycles
  | Mov (w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_operand t w dst (read_operand t w src)
  | Movzx (dw, sw, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_reg_w t dw dst (read_operand t sw src)
  | Movsx (dw, sw, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_reg_w t dw dst (sext sw (read_operand t sw src))
  | Lea (w, dst, m) ->
      charge t cost.Cost.lea_cycles;
      write_reg_w t w dst (lea_value t m)
  | Alu (op, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      let a = read_operand t w dst and b = read_operand t w src in
      let r =
        match op with
        | Add -> Int64.add a b
        | Sub -> Int64.sub a b
        | And -> Int64.logand a b
        | Or -> Int64.logor a b
        | Xor -> Int64.logxor a b
      in
      (match op with
      | Add -> set_add_flags t w a b r
      | Sub -> set_sub_flags t w a b r
      | And | Or | Xor -> set_logic_flags t w r);
      write_operand t w dst r
  | Shift (op, w, dst, count) ->
      charge t cost.Cost.alu_cycles;
      let n =
        match count with
        | Count_imm n -> n
        | Count_cl -> Int64.to_int (Int64.logand (get_reg t RCX) 0x3FL)
      in
      let n = n land (width_bits w - 1) in
      let a = read_operand t w dst in
      let r = shift_value w op a n in
      set_logic_flags t w r;
      write_operand t w dst r
  | Imul (w, dst, src) ->
      charge t cost.Cost.mul_cycles;
      let r = Int64.mul (read_reg_w t w dst) (read_operand t w src) in
      write_reg_w t w dst r
  | Bitcnt (k, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      let v = Int64.logand (read_operand t w src) (mask_of_width w) in
      write_reg_w t w dst (Int64.of_int (bitcnt_value k w v))
  | Div (w, signed, src) -> exec_div t w signed ~read:(fun t -> read_operand t w src)
  | Cqo w ->
      charge t cost.Cost.alu_cycles;
      let a = sext w (read_reg_w t w RAX) in
      write_reg_w t w RDX (if Int64.compare a 0L < 0 then -1L else 0L)
  | Neg (w, op) ->
      charge t cost.Cost.alu_cycles;
      let a = read_operand t w op in
      let r = Int64.neg a in
      set_sub_flags t w 0L a r;
      write_operand t w op r
  | Not (w, op) ->
      charge t cost.Cost.alu_cycles;
      write_operand t w op (Int64.lognot (read_operand t w op))
  | Cmp (w, a, b) ->
      charge t cost.Cost.alu_cycles;
      let va = read_operand t w a and vb = read_operand t w b in
      set_sub_flags t w va vb (Int64.sub va vb)
  | Test (w, a, b) ->
      charge t cost.Cost.alu_cycles;
      let va = read_operand t w a and vb = read_operand t w b in
      set_logic_flags t w (Int64.logand va vb)
  | Setcc (c, r) ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (if eval_cond t c then 1L else 0L)
  | Cmovcc (c, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      if eval_cond t c then write_reg_w t w dst (read_operand t w src)
      else if w = W32 then
        (* Hardware quirk: cmov with a 32-bit destination zero-extends even
           when the move does not happen. *)
        write_reg_w t w dst (read_reg_w t w dst)
  | Jmp _ ->
      charge t (cost.Cost.branch_cycles + cost.Cost.taken_branch_cycles);
      next_pc := direct_target ()
  | Jcc (c, _) ->
      charge t cost.Cost.branch_cycles;
      if eval_cond t c then begin
        charge t cost.Cost.taken_branch_cycles;
        next_pc := direct_target ()
      end
  | Jmp_reg r ->
      charge t cost.Cost.indirect_branch_cycles;
      jump_to_address t (Int64.to_int (get_reg t r) land addr_mask_47);
      next_pc := t.pc
  | Call _ ->
      charge t cost.Cost.call_ret_cycles;
      push64 t (return_address t);
      next_pc := direct_target ()
  | Call_reg r ->
      charge t (cost.Cost.call_ret_cycles + cost.Cost.indirect_branch_cycles);
      push64 t (return_address t);
      jump_to_address t (Int64.to_int (get_reg t r) land addr_mask_47);
      next_pc := t.pc
  | Ret ->
      charge t cost.Cost.call_ret_cycles;
      let addr = pop64 t in
      if addr = halt_sentinel then raise Halt_exn;
      jump_to_address t (Int64.to_int addr land addr_mask_47);
      next_pc := t.pc
  | Push op ->
      charge t cost.Cost.store_cycles;
      push64 t (read_operand t W64 op)
  | Pop r ->
      charge t cost.Cost.load_cycles;
      set_reg t r (pop64 t)
  | Wrfsbase r | Wrgsbase r ->
      charge t
        (if t.fsgsbase_available then cost.Cost.wrsegbase_cycles
         else cost.Cost.wrsegbase_syscall_cycles);
      t.counters.seg_base_writes <- t.counters.seg_base_writes + 1;
      let v = Int64.to_int (get_reg t r) land addr_mask_47 in
      (match instr with Wrfsbase _ -> t.fs_base <- v | _ -> t.gs_base <- v)
  | Rdfsbase r ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (Int64.of_int t.fs_base)
  | Rdgsbase r ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (Int64.of_int t.gs_base)
  | Wrpkru ->
      charge t cost.Cost.wrpkru_cycles;
      t.counters.pkru_writes <- t.counters.pkru_writes + 1;
      t.pkru <- Int64.to_int (Int64.logand (get_reg t RAX) 0xFFFFFFFFL);
      invalidate_pcache t;
      if Sfi_trace.Trace.enabled t.trace then
        Sfi_trace.Trace.pkru_write t.trace ~value:t.pkru
  | Rdpkru ->
      charge t cost.Cost.alu_cycles;
      set_reg t RAX (Int64.of_int t.pkru);
      set_reg t RDX 0L
  | Vload (v, m) ->
      charge t cost.Cost.vector_cycles;
      vload_data t (vreg_index v) (effective_address t m)
  | Vstore (m, v) ->
      charge t cost.Cost.vector_cycles;
      vstore_data t (effective_address t m) (vreg_index v)
  | Vzero v ->
      charge t cost.Cost.vector_cycles;
      Bytes.fill t.vregs.(vreg_index v) 0 16 '\000'
  | Vdup8 (v, b) ->
      charge t cost.Cost.vector_cycles;
      Bytes.fill t.vregs.(vreg_index v) 0 16 (Char.chr (b land 0xFF))
  | Hostcall n ->
      charge t cost.Cost.hostcall_cycles;
      t.hostcall t n
  | Trap k -> raise (Trap_exn k));
  t.pc <- !next_pc

let start t ~entry =
  t.last_fault <- None;
  t.pc <- label_index t entry;
  push64 t halt_sentinel

let run_reference t ~fuel =
  let budget = ref fuel in
  let result = ref None in
  let sampling = t.prof_interval > 0 in
  (try
     while !result = None do
       if !budget <= 0 then result := Some Yielded
       else begin
         decr budget;
         step t;
         if sampling then prof_sample t
       end
     done
   with
  | Halt_exn -> result := Some Halted
  | Hostcall_exit _ -> result := Some Halted
  | Trap_exn k -> result := Some (Trapped k));
  match !result with Some s -> s | None -> assert false
