type divergence = {
  at_step : int;
  field : string;
  reference : string;
  threaded : string;
}

let status_string = function
  | Machine.Halted -> "halted"
  | Machine.Yielded -> "yielded"
  | Machine.Trapped k -> "trapped: " ^ Sfi_x86.Ast.trap_name k

(* First field on which the two snapshots disagree, if any. *)
let diff_snapshots (r : Machine.snapshot) (th : Machine.snapshot) =
  let open Machine in
  let i64 = Int64.to_string in
  let b = string_of_bool in
  let i = string_of_int in
  let rec find_reg idx =
    if idx >= Array.length r.s_regs then None
    else if r.s_regs.(idx) <> th.s_regs.(idx) then
      Some (Printf.sprintf "reg%d" idx, i64 r.s_regs.(idx), i64 th.s_regs.(idx))
    else find_reg (idx + 1)
  in
  let scalar =
    List.find_opt
      (fun (_, a, b) -> a <> b)
      [
        ("pc", i r.s_pc, i th.s_pc);
        ("zf", b r.s_zf, b th.s_zf);
        ("sf", b r.s_sf, b th.s_sf);
        ("cf", b r.s_cf, b th.s_cf);
        ("of", b r.s_of, b th.s_of);
        ("fs_base", i r.s_fs_base, i th.s_fs_base);
        ("gs_base", i r.s_gs_base, i th.s_gs_base);
        ("pkru", i r.s_pkru, i th.s_pkru);
        ("instructions", i r.s_instructions, i th.s_instructions);
        ("cycles", i r.s_cycles, i th.s_cycles);
        ("loads", i r.s_loads, i th.s_loads);
        ("stores", i r.s_stores, i th.s_stores);
        ("code_bytes", i r.s_code_bytes, i th.s_code_bytes);
        ("seg_base_writes", i r.s_seg_base_writes, i th.s_seg_base_writes);
        ("pkru_writes", i r.s_pkru_writes, i th.s_pkru_writes);
        ("dtlb_hits", i r.s_dtlb_hits, i th.s_dtlb_hits);
        ("dtlb_misses", i r.s_dtlb_misses, i th.s_dtlb_misses);
        ("dcache_misses", i r.s_dcache_misses, i th.s_dcache_misses);
      ]
  in
  match scalar with Some _ as d -> d | None -> find_reg 0

let run_pair ?(engines = (Machine.Reference, Machine.Threaded)) ?(stride = 1) ~make ~entry
    ?(fuel = 1 lsl 20) () =
  if stride <= 0 then invalid_arg "Lockstep.run_pair: stride must be > 0";
  let ka, kb = engines in
  let m_a = make () in
  let m_b = make () in
  Machine.set_engine m_a ka;
  Machine.set_engine m_b kb;
  Machine.start m_a ~entry;
  Machine.start m_b ~entry;
  let rec advance step =
    if step >= fuel then Ok Machine.Yielded
    else begin
      let sr = Machine.run m_a ~fuel:stride in
      let st = Machine.run m_b ~fuel:stride in
      if sr <> st then
        Error
          { at_step = step; field = "status"; reference = status_string sr; threaded = status_string st }
      else
        match diff_snapshots (Machine.snapshot m_a) (Machine.snapshot m_b) with
        | Some (field, reference, threaded) -> Error { at_step = step; field; reference; threaded }
        | None -> ( match sr with Machine.Yielded -> advance (step + stride) | s -> Ok s)
    end
  in
  advance 0

let pp_divergence fmt d =
  Format.fprintf fmt "step %d: %s differs (reference=%s, threaded=%s)" d.at_step d.field
    d.reference d.threaded
