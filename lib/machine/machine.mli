(** The simulated x86-64 CPU.

    Executes {!Sfi_x86.Ast} programs against a {!Sfi_vmem.Space}, modeling
    exactly the architectural state the paper's optimizations manipulate:
    the 16 GPRs (32-bit writes zero-extend), FS/GS segment bases, PKRU, and
    a dTLB. Costs follow {!Cost}; performance counters expose cycles,
    instructions, code bytes fetched, and dTLB misses — the metrics behind
    Figures 3-7.

    Programs are loaded at a code base address; every instruction gets a
    byte address from {!Sfi_x86.Encode.layout}, so indirect control flow
    (and LFI's truncate-and-add-base sandboxing of it) runs over realistic
    addresses. *)

type t

type counters = {
  mutable instructions : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable code_bytes : int;  (** bytes fetched/decoded *)
  mutable seg_base_writes : int;  (** wrfsbase/wrgsbase executed *)
  mutable pkru_writes : int;  (** wrpkru executed *)
}

type status =
  | Halted  (** the entry function returned *)
  | Trapped of Sfi_x86.Ast.trap_kind
  | Yielded  (** fuel exhausted; {!run} may be called again to continue *)

type fault_info = { fault_addr : int; fault_write : bool }
(** Metadata for the most recent memory-access trap: the faulting virtual
    address and whether the access was a write. The runtime attributes the
    address to a slot, guard region, or host memory — the information a
    real SIGSEGV handler reads from [siginfo_t]. *)

exception Hostcall_exit of int
(** A hostcall handler may raise this to terminate the program (WASI
    [proc_exit]-style); {!run} returns [Halted]. *)

val create :
  ?cost:Cost.t ->
  ?tlb:Sfi_vmem.Tlb.config ->
  ?code_base:int ->
  ?fsgsbase_available:bool ->
  Sfi_vmem.Space.t ->
  t
(** [fsgsbase_available] (default true) selects between the user-level
    segment-base write cost and the [arch_prctl] syscall fallback cost —
    the old-CPU path Firefox must support (§4.1). *)

val space : t -> Sfi_vmem.Space.t
val cost_model : t -> Cost.t

(** {1 Program loading} *)

val load_program : t -> Sfi_x86.Ast.program -> unit
(** Replaces any previously loaded program. Raises [Invalid_argument] on
    duplicate labels. Profiler samples collected against the replaced
    program are dropped and accounted in {!profile_dropped} (the
    histogram is resized for the new program). Under the [Tier2] engine,
    every eligible block of the new program is promoted immediately. *)

val label_address : t -> string -> int
(** Code byte address of a label (code_base + offset). Raises [Not_found]
    for unknown labels. Used to seed indirect-call tables. *)

val code_bounds : t -> int * int
(** [(base, length)] of the loaded program's code image. *)

(** {1 Architectural state} *)

val get_reg : t -> Sfi_x86.Ast.gpr -> int64
val set_reg : t -> Sfi_x86.Ast.gpr -> int64 -> unit
val get_seg_base : t -> Sfi_x86.Ast.seg -> int
val set_seg_base : t -> Sfi_x86.Ast.seg -> int -> unit
(** Host-side base write (no cycle charge; the in-program [Wrgsbase]
    instruction is the one that pays). *)

val get_pkru : t -> Sfi_vmem.Mpk.pkru
val set_pkru : t -> Sfi_vmem.Mpk.pkru -> unit

val set_hostcall_handler : t -> (t -> int -> unit) -> unit
(** Handler invoked by the [Hostcall n] instruction. Arguments/results are
    passed in registers by convention (the runtime defines it). *)

(** {1 Execution} *)

val start : t -> entry:string -> unit
(** Position the program counter at [entry] and push the halt sentinel
    return address. The caller must have set up RSP to a mapped stack. *)

type engine_kind =
  | Threaded  (** pre-translated closure-threaded code (default) *)
  | Reference  (** the original AST-matching interpreter *)
  | Tier2
      (** threaded code plus eager superblock promotion: every eligible
          basic block is fused into a single closure at load time (and on
          [set_engine]), with per-instruction counter updates batched into
          one charge per block *)
  | Adaptive
      (** profiler-driven tiering: blocks start on the threaded
          dispatcher and are promoted to superblocks between {!run}
          slices once the sampling profiler sees them go hot (see
          {!set_tier_config}) *)

val engine : t -> engine_kind
val set_engine : t -> engine_kind -> unit
(** Select the execution engine used by {!run}. All engines are
    observationally identical — same registers, flags, counters and traps
    — which {!Lockstep} validates instruction by instruction; [Reference]
    exists as the differential oracle and costs several times more host
    time per simulated instruction. Superblocks charge their fixed costs
    at block entry and roll back to the faulting instruction on a trap,
    so at every dispatch boundary (any [run ~fuel] slice edge) the
    {!snapshot} of a tiered machine is bit-identical to an untiered
    one. *)

(** {1 Tier policy} *)

type tier_config = {
  threshold : int;  (** profiler samples in a block before promotion (default 8) *)
  stride : int;  (** fresh samples between promotion scans (default 256) *)
  min_len : int;  (** smallest block worth fusing, in dispatch slots (default 2) *)
}

val default_tier_config : tier_config
val tier_config : t -> tier_config

val set_tier_config : t -> tier_config -> unit
(** Tune the [Adaptive] promotion policy. Raises [Invalid_argument] if any
    knob is [<= 0]. Takes effect at the next promotion scan; already
    promoted blocks stay promoted. *)

type tier_stats = {
  blocks_total : int;  (** basic blocks in the loaded program *)
  blocks_promoted : int;  (** currently running as superblocks *)
  promotions : int;  (** lifetime promotions, across [load_program]s *)
  superblock_instructions : int;
      (** instructions retired inside superblocks (lifetime) — a host-side
          statistic, deliberately not part of {!snapshot} *)
}

val tier_stats : t -> tier_stats

val superblock_retired : t -> int
(** [superblock_instructions] without the record allocation, for per-request
    sampling on hot paths. *)

val run : t -> fuel:int -> status
(** Execute at most [fuel] instructions; returns [Yielded] if the budget
    ran out (epoch-style preemption, §6.4.3), [Halted] on return from the
    entry, or [Trapped]. *)

val retired_instructions : unit -> int
(** Simulated instructions retired by {!run} calls on the calling domain
    since the last {!reset_retired_instructions} — across all machines, so
    a bench harness can report instructions/sec per experiment even when
    experiments run on separate domains. *)

val reset_retired_instructions : unit -> unit

val execute : t -> entry:string -> ?fuel:int -> unit -> status
(** [start] + [run] with a large default budget (2^30 instructions). *)

val last_fault_info : t -> fault_info option
(** Metadata for the most recent access trap, or [None] if no access has
    trapped since the last {!start}. *)

(** {1 SFI sanitizer hook}

    A shadow-checker for escape detection: the runtime installs a policy
    that knows the owning sandbox's slot bounds and MPK color and flags
    accesses the hardware would happily perform — e.g. a store that lands
    in a mapped page of a neighbouring slot. Data checks fire {e after} the
    architectural checks succeed (a trapped access is already contained);
    branch checks fire {e before} indirect-target resolution so a wild
    target is reported at the faulting instruction. The callback must not
    mutate machine state: both engines run it and must remain bit-identical
    under {!Lockstep}. It reports violations by raising. *)

type sanitizer_access =
  | San_read  (** a data load that passed every architectural check *)
  | San_write  (** a data store that passed every architectural check *)
  | San_branch  (** an indirect branch target about to be resolved ([len] is 0) *)

val set_sanitizer :
  t -> (t -> kind:sanitizer_access -> addr:int -> len:int -> unit) option -> unit
(** Install ([Some f]) or disarm ([None], the default) the sanitizer. *)

val pc : t -> int
(** Index of the instruction currently executing (or next to execute) —
    what a sanitizer callback reads to attribute a violation. *)

val instr_at : t -> int -> Sfi_x86.Ast.instr option
(** The loaded instruction at an index, for violation reports. *)

(** {1 Tracing and profiling} *)

val trace : t -> Sfi_trace.Trace.t
(** The attached trace sink ({!Sfi_trace.Trace.null} by default). *)

val set_trace : t -> Sfi_trace.Trace.t -> unit
(** Attach a trace sink. Its clock is pointed at this machine's cycle
    counter (simulated nanoseconds), and the dTLB is wired to emit
    fill/evict events into it. The machine itself emits [pkru.write]
    on every [wrpkru] (both engines, identically) and a
    [fuel.checkpoint] each time {!run} yields. Trace emission never
    touches the performance counters, so traced and untraced runs stay
    bit-identical under {!Lockstep}. *)

val arm_profiler : ?interval:int -> t -> unit
(** Start sampling the program counter every [interval] (default 64)
    executed instructions into a per-instruction histogram. Arming
    clears previous samples. Sampling runs in a dedicated dispatch loop
    so the disarmed hot path is unchanged, and it perturbs no
    architectural state or counters. Selecting the [Adaptive] engine
    arms the profiler (at the default interval) if it is not already
    armed. *)

val disarm_profiler : t -> unit
(** Stop sampling. Collected samples remain readable. Under the
    [Adaptive] engine this also freezes tier promotion at the current
    assignment — already-promoted superblocks keep running. *)

val profile_samples : t -> int
(** Total samples collected since the profiler was last armed. *)

val profile_dropped : t -> int
(** Lifetime count of samples discarded because {!load_program} replaced
    the program they were collected against: the histogram is indexed by
    instruction, so samples describing the old program carry no signal
    for the new one and are dropped — visibly, through this counter —
    rather than silently. Survives re-arming; cleared only by
    {!create}. *)

val hot_regions : t -> (string * int) list
(** Samples aggregated by code region — each instruction is attributed
    to the nearest preceding label (["<entry>"] before the first) —
    sorted by sample count, hottest first. *)

(** {1 Counters} *)

val counters : t -> counters
(** A snapshot: the returned record is a private copy, immutable with
    respect to further execution. *)

val charge_extra_cycles : t -> int -> unit
(** Add cycles to the live counter — how the runtime charges modeled
    transition costs (springboard sequences, context switches) that do
    not correspond to executed instructions. *)

val reset_counters : t -> unit
(** Also resets TLB hit/miss counters. *)

val dtlb_misses : t -> int
val dtlb_hits : t -> int

val dcache_misses : t -> int
(** L1D misses under the flat one-level data-cache model. Working-set
    effects surface here: 32-bit Wasm indices halve pointer footprints,
    which is how Wasm occasionally beats native (sections 6.1 and 6.2). *)

val elapsed_ns : t -> float
(** Simulated nanoseconds: cycles / frequency. *)

val flush_tlb : t -> unit
(** Simulate the TLB flush of an OS-level context switch (multiprocess
    scaling, Figure 7). *)

(** {1 Execution contexts}

    A snapshot of the architectural state (registers, vector registers,
    flags, segment bases, PKRU, program counter). The runtime uses these to
    multiplex many paused Wasm activations over one machine — the
    user-level context switching that makes single-address-space scaling
    attractive (§2). Saving/restoring charges no cycles by itself; the
    scheduler models switch costs explicitly. *)

type context

val save_context : t -> context
val restore_context : t -> context -> unit

(** {1 Observable-state snapshots}

    Everything the lockstep differential validator compares after each
    instruction: architectural state plus every performance counter the
    experiments report. If two engines agree on all of these at every step,
    they are observationally identical for the paper's purposes. *)

type snapshot = {
  s_regs : int64 array;
  s_zf : bool;
  s_sf : bool;
  s_cf : bool;
  s_of : bool;
  s_fs_base : int;
  s_gs_base : int;
  s_pkru : int;
  s_pc : int;
  s_instructions : int;
  s_cycles : int;
  s_loads : int;
  s_stores : int;
  s_code_bytes : int;
  s_seg_base_writes : int;
  s_pkru_writes : int;
  s_dtlb_hits : int;
  s_dtlb_misses : int;
  s_dcache_misses : int;
}

val snapshot : t -> snapshot
