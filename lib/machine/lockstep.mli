(** Lockstep differential validation of the two execution engines.

    Builds two identically-configured machines from the caller's [make]
    thunk, runs one on the {!Machine.Reference} interpreter and one on the
    {!Machine.Threaded} engine, single-steps both ([run ~fuel:1]) and
    compares the full {!Machine.snapshot} — registers, flags, segment
    bases, PKRU, pc, and every performance counter including dTLB and
    dcache statistics — after each instruction. The first disagreement is
    reported with the step number and field; agreement through termination
    proves the engines observationally identical on that program. *)

type divergence = {
  at_step : int;  (** instruction index at which the engines disagreed *)
  field : string;  (** snapshot field (or "status") that differs *)
  reference : string;  (** value under the reference interpreter *)
  threaded : string;  (** value under the threaded engine *)
}

val run_pair :
  make:(unit -> Machine.t) ->
  entry:string ->
  ?fuel:int ->
  unit ->
  (Machine.status, divergence) result
(** [run_pair ~make ~entry ()] validates up to [fuel] (default 2^20)
    instructions. [make] must return a fully set-up machine — program
    loaded, stack mapped, registers/hostcall handler initialized — and is
    called twice, so it must not share mutable state (notably the
    {!Sfi_vmem.Space.t}) between calls. Returns the common final status, or
    the first divergence. *)

val pp_divergence : Format.formatter -> divergence -> unit
