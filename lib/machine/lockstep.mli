(** Lockstep differential validation of any ordered pair of execution
    engines.

    Builds two identically-configured machines from the caller's [make]
    thunk, runs each on one of the requested {!Machine.engine_kind}s
    (default {!Machine.Reference} vs {!Machine.Threaded}), advances both
    in [stride]-instruction slices ([run ~fuel:stride], default 1) and
    compares the full {!Machine.snapshot} — registers, flags, segment
    bases, PKRU, pc, and every performance counter including dTLB and
    dcache statistics — after each slice. The first disagreement is
    reported with the step number and field; agreement through termination
    proves the engines observationally identical on that program.

    A stride of 1 never lets the tiered engines enter a superblock (a
    block needs its whole slot budget up front), so strides > 1 are the
    interesting setting for [Tier2]/[Adaptive]: every slice edge is a
    dispatch boundary at which batched charges must have converged with
    the per-instruction engines. *)

type divergence = {
  at_step : int;  (** instruction index at which the engines disagreed *)
  field : string;  (** snapshot field (or "status") that differs *)
  reference : string;  (** value under the first engine of the pair *)
  threaded : string;  (** value under the second engine of the pair *)
}

val run_pair :
  ?engines:Machine.engine_kind * Machine.engine_kind ->
  ?stride:int ->
  make:(unit -> Machine.t) ->
  entry:string ->
  ?fuel:int ->
  unit ->
  (Machine.status, divergence) result
(** [run_pair ~make ~entry ()] validates up to [fuel] (default 2^20)
    instructions. [make] must return a fully set-up machine — program
    loaded, stack mapped, registers/hostcall handler initialized — and is
    called twice, so it must not share mutable state (notably the
    {!Sfi_vmem.Space.t}) between calls. Returns the common final status, or
    the first divergence. Raises [Invalid_argument] if [stride <= 0]. *)

val pp_divergence : Format.formatter -> divergence -> unit
