(* Tier 2: superblock promotion. A promoted basic block executes as one
   closure that charges instruction/code-byte/fixed-cycle counters once at
   block entry (constant-folded at promotion time) and then runs per-op
   bodies stripped of their per-instruction prologues. Dynamic costs —
   dTLB walks, dcache misses, load/store counters, taken-branch cycles,
   segment/PKRU side effects — stay live inside the bodies, so at every
   dispatch boundary the counters are bit-identical to what [Decode.step]
   would have produced. Blocks that can fault mid-way run guarded: each
   body publishes its instruction index in [t.pc] before executing, and a
   prefix-sum side table rolls the batched charges back to exactly the
   faulting instruction before the trap is re-raised. *)

open Sfi_x86.Ast
open Mstate
open Decode
open Translate

(* The cycle charge [compile_instr] issues unconditionally, before any
   trap point — everything except dynamic charges (TLB walk, dcache miss,
   load/store latency, the taken-branch adder). Batched at block entry. *)
let fixed_cycles t (i : instr) =
  let c = t.cost in
  match i with
  | Label _ -> 0
  | Nop | Mov _ | Movzx _ | Movsx _ | Alu _ | Shift _ | Bitcnt _ | Cqo _ | Neg _ | Not _ | Cmp _
  | Test _ | Setcc _ | Cmovcc _ | Rdfsbase _ | Rdgsbase _ | Rdpkru ->
      c.Cost.alu_cycles
  | Lea _ -> c.Cost.lea_cycles
  | Imul _ -> c.Cost.mul_cycles
  | Div _ -> c.Cost.div_cycles
  | Jmp _ -> c.Cost.branch_cycles + c.Cost.taken_branch_cycles
  | Jcc _ -> c.Cost.branch_cycles
  | Jmp_reg _ -> c.Cost.indirect_branch_cycles
  | Call _ -> c.Cost.call_ret_cycles
  | Call_reg _ -> c.Cost.call_ret_cycles + c.Cost.indirect_branch_cycles
  | Ret -> c.Cost.call_ret_cycles
  | Push _ -> c.Cost.store_cycles
  | Pop _ -> c.Cost.load_cycles
  | Wrfsbase _ | Wrgsbase _ ->
      if t.fsgsbase_available then c.Cost.wrsegbase_cycles else c.Cost.wrsegbase_syscall_cycles
  | Wrpkru -> c.Cost.wrpkru_cycles
  | Vload _ | Vstore _ | Vzero _ | Vdup8 _ -> c.Cost.vector_cycles
  | Hostcall _ -> c.Cost.hostcall_cycles
  | Trap _ -> 0

(* Ops whose body establishes the successor pc itself. Everything else
   falls through and only the last body of a block needs a pc write. *)
let is_control = function
  | Jmp _ | Jcc _ | Jmp_reg _ | Call _ | Call_reg _ | Ret | Wrpkru -> true
  | _ -> false

(* [compile_instr] minus the per-instruction prologue and fixed charge:
   semantics plus dynamic charges only. Control-flow bodies set [t.pc];
   straight-line bodies leave it to the block wrapper. *)
let compile_body (l : loaded) ~code_base ~idx (instr : instr) =
  let next = idx + 1 in
  let tgt = l.targets.(idx) in
  let ret_addr = l.ret_addrs.(idx) in
  let index_of_off = l.index_of_off in
  match instr with
  | Label _ | Nop -> fun _ -> ()
  | Mov (w, dst, src) ->
      let rd = compile_read w src and wr = compile_write w dst in
      fun t -> wr t (rd t)
  | Movzx (dw, sw, dst, src) ->
      let rd = compile_read sw src and wr = compile_write_reg dw dst in
      fun t -> wr t (rd t)
  | Movsx (dw, sw, dst, src) ->
      let rd = compile_read sw src and wr = compile_write_reg dw dst in
      fun t -> wr t (sext sw (rd t))
  | Lea (w, dst, m) ->
      let lv = compile_lea m and wr = compile_write_reg w dst in
      fun t -> wr t (lv t)
  | Alu (op, w, dst, src) ->
      let rd = compile_read w dst and rs = compile_read w src and wr = compile_write w dst in
      let f =
        match op with
        | Add -> Int64.add
        | Sub -> Int64.sub
        | And -> Int64.logand
        | Or -> Int64.logor
        | Xor -> Int64.logxor
      in
      fun t ->
        let a = rd t and b = rs t in
        let r = f a b in
        (match op with
        | Add -> set_add_flags t w a b r
        | Sub -> set_sub_flags t w a b r
        | And | Or | Xor -> set_logic_flags t w r);
        wr t r
  | Shift (op, w, dst, count) ->
      let rd = compile_read w dst and wr = compile_write w dst in
      let rcx = gpr_index RCX in
      let get_n =
        match count with
        | Count_imm n -> fun _ -> n
        | Count_cl -> fun t -> Int64.to_int (Int64.logand (reg_get t rcx) 0x3FL)
      in
      let nmask = width_bits w - 1 in
      fun t ->
        let n = get_n t land nmask in
        let a = rd t in
        let r = shift_value w op a n in
        set_logic_flags t w r;
        wr t r
  | Imul (w, dst, src) ->
      let rdd = compile_read_reg w dst and rs = compile_read w src in
      let wr = compile_write_reg w dst in
      fun t ->
        let b = rs t in
        wr t (Int64.mul (rdd t) b)
  | Bitcnt (k, w, dst, src) ->
      let rs = compile_read w src and wr = compile_write_reg w dst in
      let m = mask_of_width w in
      fun t ->
        let v = Int64.logand (rs t) m in
        wr t (Int64.of_int (bitcnt_value k w v))
  | Div (w, signed, src) ->
      let rs = compile_read w src in
      fun t -> exec_div_core t w signed ~read:rs
  | Cqo w ->
      fun t ->
        let a = sext w (read_reg_w t w RAX) in
        write_reg_w t w RDX (if Int64.compare a 0L < 0 then -1L else 0L)
  | Neg (w, op) ->
      let rd = compile_read w op and wr = compile_write w op in
      fun t ->
        let a = rd t in
        let r = Int64.neg a in
        set_sub_flags t w 0L a r;
        wr t r
  | Not (w, op) ->
      let rd = compile_read w op and wr = compile_write w op in
      fun t -> wr t (Int64.lognot (rd t))
  | Cmp (w, a, b) ->
      let ra = compile_read w a and rb = compile_read w b in
      fun t ->
        let va = ra t and vb = rb t in
        set_sub_flags t w va vb (Int64.sub va vb)
  | Test (w, a, b) ->
      let ra = compile_read w a and rb = compile_read w b in
      fun t ->
        let va = ra t and vb = rb t in
        set_logic_flags t w (Int64.logand va vb)
  | Setcc (c, r) ->
      let i = gpr_index r in
      fun t -> reg_set t i (if eval_cond t c then 1L else 0L)
  | Cmovcc (c, w, dst, src) ->
      let rs = compile_read w src in
      let rdd = compile_read_reg w dst and wr = compile_write_reg w dst in
      fun t -> if eval_cond t c then wr t (rs t) else if w = W32 then wr t (rdd t)
  | Jmp _ ->
      (* Only resolved targets are promotable ([Bbypass] otherwise), and
         the taken-branch adder is unconditional, so it lives in the fixed
         batch. *)
      fun t -> t.pc <- tgt
  | Jcc (c, _) ->
      fun t ->
        if eval_cond t c then begin
          charge t t.cost.Cost.taken_branch_cycles;
          t.pc <- tgt
        end
        else t.pc <- next
  | Jmp_reg r ->
      let i = gpr_index r in
      fun t -> jump_via index_of_off code_base t (Int64.to_int (reg_get t i) land addr_mask_47)
  | Call _ ->
      fun t ->
        push64 t ret_addr;
        t.pc <- tgt
  | Call_reg r ->
      let i = gpr_index r in
      fun t ->
        push64 t ret_addr;
        jump_via index_of_off code_base t (Int64.to_int (reg_get t i) land addr_mask_47)
  | Ret ->
      fun t ->
        let addr = pop64 t in
        if addr = halt_sentinel then raise Halt_exn;
        jump_via index_of_off code_base t (Int64.to_int addr land addr_mask_47)
  | Push op ->
      let rd = compile_read W64 op in
      fun t -> push64 t (rd t)
  | Pop r ->
      let i = gpr_index r in
      fun t -> reg_set t i (pop64 t)
  | Wrfsbase r | Wrgsbase r ->
      let i = gpr_index r in
      let is_fs = match instr with Wrfsbase _ -> true | _ -> false in
      fun t ->
        t.counters.seg_base_writes <- t.counters.seg_base_writes + 1;
        let v = Int64.to_int (reg_get t i) land addr_mask_47 in
        if is_fs then t.fs_base <- v else t.gs_base <- v
  | Rdfsbase r ->
      let i = gpr_index r in
      fun t -> reg_set t i (Int64.of_int t.fs_base)
  | Rdgsbase r ->
      let i = gpr_index r in
      fun t -> reg_set t i (Int64.of_int t.gs_base)
  | Wrpkru ->
      let rax = gpr_index RAX in
      fun t ->
        t.counters.pkru_writes <- t.counters.pkru_writes + 1;
        t.pkru <- Int64.to_int (Int64.logand (reg_get t rax) 0xFFFFFFFFL);
        invalidate_pcache t;
        if Sfi_trace.Trace.enabled t.trace then Sfi_trace.Trace.pkru_write t.trace ~value:t.pkru;
        t.pc <- next
  | Rdpkru ->
      let rax = gpr_index RAX and rdx = gpr_index RDX in
      fun t ->
        reg_set t rax (Int64.of_int t.pkru);
        reg_set t rdx 0L
  | Vload (v, m) ->
      let ea = compile_ea m and vi = vreg_index v in
      fun t -> vload_data t vi (ea t)
  | Vstore (m, v) ->
      let ea = compile_ea m and vi = vreg_index v in
      fun t -> vstore_data t (ea t) vi
  | Vzero v ->
      let vi = vreg_index v in
      fun t -> Bytes.fill t.vregs.(vi) 0 16 '\000'
  | Vdup8 (v, b) ->
      let vi = vreg_index v and c = Char.chr (b land 0xFF) in
      fun t -> Bytes.fill t.vregs.(vi) 0 16 c
  | Hostcall _ | Trap _ -> invalid_arg "Machine.Tier: bypass instruction in superblock"

let class_code = function Bpure -> 0 | Bload -> 1 | Bhazard -> 2 | Bbypass -> 3

(* Build and install the superblock closure for [b]. The caller has
   already checked eligibility. *)
let promote_block t (l : loaded) (b : block) =
  let s = b.b_start and k = b.b_len in
  let prog = l.program in
  (* Prefix sums over the block's first [j] dispatch slots: bytes fetched,
     fixed cycles, retired instructions. Labels contribute nothing —
     [step] never runs their prologue. Index [done_] = slots whose
     prologue+fixed [step] would have charged before a fault at slot
     [done_ - 1]. *)
  let pre_bytes = Array.make (k + 1) 0 in
  let pre_fixed = Array.make (k + 1) 0 in
  let pre_instrs = Array.make (k + 1) 0 in
  for j = 0 to k - 1 do
    let i = prog.(s + j) in
    let is_label = match i with Label _ -> true | _ -> false in
    pre_bytes.(j + 1) <- (pre_bytes.(j) + if is_label then 0 else l.lengths.(s + j));
    pre_fixed.(j + 1) <- (pre_fixed.(j) + if is_label then 0 else fixed_cycles t i);
    pre_instrs.(j + 1) <- (pre_instrs.(j) + if is_label then 0 else 1)
  done;
  let total_bytes = pre_bytes.(k) in
  let fixed = pre_fixed.(k) in
  let n_instrs = pre_instrs.(k) in
  let guarded = b.b_class <> Bpure in
  let body_at j =
    let idx = s + j in
    let core = compile_body l ~code_base:t.code_base ~idx prog.(idx) in
    let core =
      if j = k - 1 && not (is_control prog.(idx)) then fun t ->
        core t;
        t.pc <- idx + 1
      else core
    in
    if guarded then fun t ->
      (* Publish the slot index before executing so a trap (and the
         sanitizer's fault attribution) lands on the right instruction,
         and so the rollback below knows how far the block got. *)
      t.pc <- idx;
      core t
    else core
  in
  (* Fuse the bodies into one chained closure — no per-op dispatch table
     lookup left. *)
  let chain = ref (body_at 0) in
  for j = 1 to k - 1 do
    let prev = !chain and next = body_at j in
    chain :=
      fun t ->
        prev t;
        next t
  done;
  let bodies = !chain in
  let bpc = t.cost.Cost.frontend_bytes_per_cycle in
  let sb =
    if not guarded then fun t ->
      let c = t.counters in
      c.instructions <- c.instructions + n_instrs;
      c.code_bytes <- c.code_bytes + total_bytes;
      c.cycles <- c.cycles + fixed;
      t.sb_retired <- t.sb_retired + n_instrs;
      if bpc > 0 then begin
        let total = t.fetch_accum + total_bytes in
        c.cycles <- (c.cycles + (total / bpc));
        t.fetch_accum <- total mod bpc
      end;
      bodies t
    else fun t ->
      let c = t.counters in
      let accum_in = t.fetch_accum in
      c.instructions <- c.instructions + n_instrs;
      c.code_bytes <- c.code_bytes + total_bytes;
      c.cycles <- c.cycles + fixed;
      t.sb_retired <- t.sb_retired + n_instrs;
      if bpc > 0 then begin
        let total = accum_in + total_bytes in
        c.cycles <- (c.cycles + (total / bpc));
        t.fetch_accum <- total mod bpc
      end;
      try bodies t
      with e ->
        (* Roll the batch back to the faulting slot: [step] charges an
           instruction's prologue and fixed cycles before any of its trap
           points, so the faulting slot itself stays charged. Dynamic
           charges issued by completed bodies are already exact. *)
        let done_ = t.pc - s + 1 in
        c.instructions <- c.instructions - (n_instrs - pre_instrs.(done_));
        c.code_bytes <- c.code_bytes - (total_bytes - pre_bytes.(done_));
        c.cycles <- c.cycles - (fixed - pre_fixed.(done_));
        if bpc > 0 then begin
          let front_all = (accum_in + total_bytes) / bpc in
          let front_done = (accum_in + pre_bytes.(done_)) / bpc in
          c.cycles <- c.cycles - (front_all - front_done);
          t.fetch_accum <- (accum_in + pre_bytes.(done_)) mod bpc
        end;
        t.sb_retired <- t.sb_retired - (n_instrs - pre_instrs.(done_));
        raise e
  in
  l.sb_exec.(s) <- sb;
  l.sb_len.(s) <- k;
  l.promoted <- l.promoted + 1;
  t.tier_promotions <- t.tier_promotions + 1;
  if Sfi_trace.Trace.enabled t.trace then
    Sfi_trace.Trace.tier_promote t.trace ~cls:(class_code b.b_class) ~block:s ~len:k

(* Promotion policy. [Bbypass] never promotes; trappable classes promote
   only while tracing is off, because their dynamic TLB/dcache/PKRU events
   carry cycle timestamps that batching would shift. [Bpure] blocks emit
   nothing and promote unconditionally. *)
let eligible t (b : block) =
  b.b_len >= t.tier_min_len
  &&
  match b.b_class with
  | Bpure -> true
  | Bload | Bhazard -> not (Sfi_trace.Trace.enabled t.trace)
  | Bbypass -> false

let promote_all t =
  match t.loaded with
  | None -> ()
  | Some l ->
      Array.iter (fun b -> if l.sb_len.(b.b_start) = 0 && eligible t b then promote_block t l b) l.blocks

(* Demote promoted blocks that are no longer safe under the current trace
   sink (called when [set_trace] installs an enabled sink). Stale
   [sb_exec] entries are unreachable once [sb_len] is zeroed. *)
let demote_unsafe t =
  match t.loaded with
  | None -> ()
  | Some l ->
      Array.iter
        (fun b ->
          if l.sb_len.(b.b_start) > 0 && b.b_class <> Bpure then begin
            l.sb_len.(b.b_start) <- 0;
            l.promoted <- l.promoted - 1
          end)
        l.blocks

(* Profiler-driven promotion sweep, throttled to one O(program) pass per
   [tier_stride] fresh samples. A block is hot once the histogram holds
   [tier_threshold] samples across its slots. *)
let adaptive_scan t =
  match t.loaded with
  | None -> ()
  | Some l ->
      if t.prof_total - t.prof_last_scan >= t.tier_stride then begin
        t.prof_last_scan <- t.prof_total;
        let counts = t.prof_counts in
        let ncounts = Array.length counts in
        Array.iter
          (fun b ->
            if l.sb_len.(b.b_start) = 0 && eligible t b then begin
              let sum = ref 0 in
              let hi = min (b.b_start + b.b_len) ncounts in
              for i = b.b_start to hi - 1 do
                sum := !sum + counts.(i)
              done;
              if !sum >= t.tier_threshold then promote_block t l b
            end)
          l.blocks
      end

(* The tiered dispatch loop: superblock when the current pc heads one and
   the remaining budget covers all of its slots (so fuel boundaries stay
   aligned with tier-1 dispatch slots), single threaded-code dispatch
   otherwise. A superblock retires [k] dispatch slots of fuel — exactly
   what tier 1 would have spent on the same instructions. *)
let run_tiered t ~fuel =
  let l = get_loaded t in
  let code = l.exec in
  let sb_len = l.sb_len in
  let sb_exec = l.sb_exec in
  if fuel <= 0 then Yielded
  else if t.pc < 0 || t.pc > Array.length l.program then Trapped Trap_out_of_bounds
  else begin
    let budget = ref fuel in
    try
      if t.prof_interval > 0 then begin
        while !budget > 0 do
          let pc = t.pc in
          let k = sb_len.(pc) in
          if k > 0 && k <= !budget then begin
            budget := !budget - k;
            sb_exec.(pc) t;
            prof_sample_block t k
          end
          else begin
            decr budget;
            code.(pc) t;
            prof_sample t
          end
        done;
        Yielded
      end
      else begin
        while !budget > 0 do
          let pc = t.pc in
          let k = sb_len.(pc) in
          if k > 0 && k <= !budget then begin
            budget := !budget - k;
            sb_exec.(pc) t
          end
          else begin
            decr budget;
            code.(pc) t
          end
        done;
        Yielded
      end
    with
    | Halt_exn | Hostcall_exit _ -> Halted
    | Trap_exn k -> Trapped k
  end
