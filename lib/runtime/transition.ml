(* The sandbox-boundary cost model.

   Every crossing is counted; what it costs depends on which springboard
   handles it. Invokes always take the full path (stack switch, exception
   handler, PKRU restore on the way out). Hostcalls are classified at
   registration (see {!Rt_types.hostcall_class}) and the cheap classes
   skip most of the work — in particular both [wrpkru]s, the dominant
   term under ColorGuard (§6.1). A [wrpkru] is also elided whenever the
   write would not change the PKRU image (a color-0 sandbox runs under
   the host image already). *)

open Rt_types
module Mpk = Sfi_vmem.Mpk
module Cost = Sfi_machine.Cost
module Trace = Sfi_trace.Trace

let colorguard e = e.compiled.Codegen.config.Codegen.colorguard
let wrpkru_cycles e = (Machine.cost_model e.machine).Cost.wrpkru_cycles

(* Modeled springboard cycles have no executed instructions behind them;
   they go straight onto the machine's cycle counter. *)
let charge_cycles e n = Machine.charge_extra_cycles e.machine n

(* Every per-engine counter bump mirrors into the domain-local aggregate
   (see {!Rt_types.domain_counters}): the helpers below bump both. *)
let count_transitions e n =
  e.counters.transitions <- e.counters.transitions + n;
  let d = domain_counters () in
  d.transitions <- d.transitions + n

let count_elided e n =
  e.counters.pkru_writes_elided <- e.counters.pkru_writes_elided + n;
  let d = domain_counters () in
  d.pkru_writes_elided <- d.pkru_writes_elided + n

(* Entry half of an invoke: fixed stack-switch / exception-handler setup.
   The entry-sequence [wrpkru] is real compiled code, charged by the
   machine as it executes. Opens the per-sandbox transition span. *)
let charge_entry e inst =
  Trace.call_begin e.trace ~sandbox:inst.id;
  count_transitions e 1;
  charge_cycles e e.transition_overhead_cycles

(* Exit half of an invoke: same fixed overhead, plus restoring the host
   PKRU image — unless the sandbox image {e is} the host image (color 0),
   where the springboard skips the second [wrpkru]. *)
let charge_exit e inst =
  count_transitions e 1;
  charge_cycles e e.transition_overhead_cycles;
  if colorguard e then begin
    Machine.set_pkru e.machine Mpk.allow_all;
    if inst.inst_color <> 0 then charge_cycles e (wrpkru_cycles e)
    else count_elided e 1
  end;
  (* Close the span after the exit overhead so its duration covers the
     whole round trip, springboards included. *)
  Trace.call_end e.trace ~sandbox:inst.id

(* A hostcall is a round trip: two crossings, charged by class. [Full]
   pays the general springboard both ways; [Pure]/[Readonly] pay only a
   thin call shim and skip both PKRU writes entirely ([Readonly] runs
   under the sandbox's own image — pkey 0 keeps the host block
   reachable). *)
let charge_hostcall e inst clazz =
  let c = e.counters and d = domain_counters () in
  count_transitions e 2;
  let cost =
    match clazz with
    | Pure ->
        c.calls_pure <- c.calls_pure + 1;
        d.calls_pure <- d.calls_pure + 1;
        if colorguard e then count_elided e 2;
        e.pure_springboard_cycles
    | Readonly ->
        c.calls_readonly <- c.calls_readonly + 1;
        d.calls_readonly <- d.calls_readonly + 1;
        if colorguard e then count_elided e 2;
        e.readonly_springboard_cycles
    | Full ->
        c.calls_full <- c.calls_full + 1;
        d.calls_full <- d.calls_full + 1;
        let base = 2 * e.transition_overhead_cycles in
        if colorguard e then
          if inst.inst_color <> 0 then base + (2 * wrpkru_cycles e)
          else begin
            count_elided e 2;
            base
          end
        else base
  in
  charge_cycles e cost;
  if Trace.enabled e.trace then
    let cls = match clazz with Pure -> 0 | Readonly -> 1 | Full -> 2 in
    Trace.hostcall e.trace ~sandbox:inst.id ~cls ~cycles:cost
