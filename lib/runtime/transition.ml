(* The sandbox-boundary cost model.

   Every crossing is counted; what it costs depends on which springboard
   handles it. Invokes always take the full path (stack switch, exception
   handler, PKRU restore on the way out). Hostcalls are classified at
   registration (see {!Rt_types.hostcall_class}) and the cheap classes
   skip most of the work — in particular both [wrpkru]s, the dominant
   term under ColorGuard (§6.1). A [wrpkru] is also elided whenever the
   write would not change the PKRU image (a color-0 sandbox runs under
   the host image already). *)

open Rt_types
module Mpk = Sfi_vmem.Mpk
module Cost = Sfi_machine.Cost

let colorguard e = e.compiled.Codegen.config.Codegen.colorguard
let wrpkru_cycles e = (Machine.cost_model e.machine).Cost.wrpkru_cycles

let charge_cycles e n =
  let c = Machine.counters e.machine in
  c.Machine.cycles <- c.Machine.cycles + n

(* Entry half of an invoke: fixed stack-switch / exception-handler setup.
   The entry-sequence [wrpkru] is real compiled code, charged by the
   machine as it executes. *)
let charge_entry e =
  e.counters.transitions <- e.counters.transitions + 1;
  charge_cycles e e.transition_overhead_cycles

(* Exit half of an invoke: same fixed overhead, plus restoring the host
   PKRU image — unless the sandbox image {e is} the host image (color 0),
   where the springboard skips the second [wrpkru]. *)
let charge_exit e inst =
  e.counters.transitions <- e.counters.transitions + 1;
  charge_cycles e e.transition_overhead_cycles;
  if colorguard e then begin
    Machine.set_pkru e.machine Mpk.allow_all;
    if inst.inst_color <> 0 then charge_cycles e (wrpkru_cycles e)
    else e.counters.pkru_writes_elided <- e.counters.pkru_writes_elided + 1
  end

(* A hostcall is a round trip: two crossings, charged by class. [Full]
   pays the general springboard both ways; [Pure]/[Readonly] pay only a
   thin call shim and skip both PKRU writes entirely ([Readonly] runs
   under the sandbox's own image — pkey 0 keeps the host block
   reachable). *)
let charge_hostcall e inst clazz =
  let c = e.counters in
  c.transitions <- c.transitions + 2;
  let elide n = c.pkru_writes_elided <- c.pkru_writes_elided + n in
  match clazz with
  | Pure ->
      c.calls_pure <- c.calls_pure + 1;
      charge_cycles e e.pure_springboard_cycles;
      if colorguard e then elide 2
  | Readonly ->
      c.calls_readonly <- c.calls_readonly + 1;
      charge_cycles e e.readonly_springboard_cycles;
      if colorguard e then elide 2
  | Full ->
      c.calls_full <- c.calls_full + 1;
      charge_cycles e (2 * e.transition_overhead_cycles);
      if colorguard e then
        if inst.inst_color <> 0 then charge_cycles e (2 * wrpkru_cycles e) else elide 2
