(** The Wasm engine: instances, memory management, transitions.

    Ties the pieces together the way a production runtime does (§4, §5):
    compiled code from {!Sfi_core.Codegen} is loaded into a
    {!Sfi_machine.Machine}; each instance gets an instance context (vmctx,
    addressed through [%fs]), a host stack, and a linear-memory slot —
    either a private 4 GiB + guard reservation ([`Simple]) or a slot in a
    ColorGuard-striped pool ([`Pool]).

    Transitions into and out of an instance model §6.4.1: entering executes
    the compiled entry sequence (segment-base write, and under ColorGuard
    the [wrpkru] domain switch) plus a fixed overhead for the stack switch
    and exception-handler bookkeeping; leaving restores the host PKRU
    (charging the second [wrpkru]) and the same fixed overhead. *)

type engine
type instance

type trap = Sfi_x86.Ast.trap_kind

(** {1 Faults}

    Sandbox misbehavior is a typed, recoverable condition — never a bare
    [Failure] escaping to the host. A faulting instance is killed and its
    slot recycled; the engine keeps serving. *)

type fault =
  | Trap of trap  (** the sandbox executed a trapping instruction *)
  | Fuel_exhausted  (** watchdog: the call overran its fuel deadline *)
  | Pool_exhausted  (** no free slot and the retry queue is full *)
  | Instance_dead  (** the instance was killed by an earlier fault *)

exception Fault of fault
(** Raised only by the non-[result] entry points ({!instantiate},
    {!invoke} on fuel exhaustion); {!invoke_protected} and
    {!try_instantiate} return faults as values. *)

val fault_name : fault -> string

type allocator =
  | Simple of { reservation : int }
      (** one private reservation per instance (base stride
          [reservation + 4 GiB] guard), the classic layout of §2 *)
  | Pool of Sfi_core.Pool.layout
      (** Wasmtime-style pooling, optionally ColorGuard-striped *)

val slab_base : int
(** Base address of the linear-memory slab (32 GiB). Slot 0's heap starts
    here; the LFI backend overlays its code region on it so one register
    can base both code and data. *)

val hostcall_halt : int
(** Hostcall id that terminates execution (used by LFI's halt
    trampoline). *)

val create_engine :
  ?cost:Sfi_machine.Cost.t ->
  ?tlb:Sfi_vmem.Tlb.config ->
  ?fsgsbase_available:bool ->
  ?max_map_count:int ->
  ?allocator:allocator ->
  ?transition_overhead_cycles:int ->
  ?pure_springboard_cycles:int ->
  ?readonly_springboard_cycles:int ->
  ?retry_queue_capacity:int ->
  ?code_base:int ->
  ?engine:Sfi_machine.Machine.engine_kind ->
  Sfi_core.Codegen.compiled ->
  engine
(** Loads the program, maps the indirect-call tables, prepares the
    allocator, and bakes the module's pre-initialized image (data segments
    + vmctx template) that every instantiation maps copy-on-write.
    [allocator] defaults to [Simple] with a 4 GiB reservation;
    [transition_overhead_cycles] (default 55 per direction, calibrated to
    the paper's 30.34 ns baseline at 2.2 GHz) models the stack-switch,
    exception-handler and ABI work of a transition besides the instructions
    the entry sequence itself executes (sec 6.4.1).
    [pure_springboard_cycles] (default 10) and
    [readonly_springboard_cycles] (default 24) price the thin hostcall
    springboards of the corresponding {!hostcall_class}es, per Kolosick et
    al.'s zero-cost transitions. [engine] selects the machine's execution
    engine (default {!Sfi_machine.Machine.Adaptive}: threaded dispatch
    plus profiler-driven superblock promotion — observationally identical
    to [Threaded] but faster on host time once hot blocks tier up). *)

val machine : engine -> Sfi_machine.Machine.t
val space : engine -> Sfi_vmem.Space.t
val compiled : engine -> Sfi_core.Codegen.compiled

(** {1 Tracing}

    The runtime emits structured events into a {!Sfi_trace.Trace.t} sink:
    per-sandbox transition spans ([call] begin/end around every invoke,
    closed on trap and watchdog kill too), per-class [hostcall] instants
    with their modeled cycle cost, lifecycle events ([instantiate.cold] /
    [instantiate.warm] / [recycle] / [kill]), and [fault] instants
    carrying {!last_fault_info}'s address attribution. Attaching a sink
    also wires the machine (pkru writes, fuel checkpoints, dTLB
    fill/evict) to it. The default sink is {!Sfi_trace.Trace.null}: every
    emission site reduces to one load-and-branch, and trace emission
    never perturbs counters or architectural state. *)

val trace : engine -> Sfi_trace.Trace.t
val set_trace : engine -> Sfi_trace.Trace.t -> unit

(** How much boundary work a hostcall actually needs (Kolosick et al.,
    {e Isolation Without Taxation}), declared at registration:
    - [Pure]: touches no sandbox memory and cannot fault — direct call
      through a minimal springboard; no stack switch, no PKRU write.
    - [Readonly]: may read sandbox memory; runs on the sandbox stack under
      the sandbox's own PKRU image (pkey 0 keeps the host block
      reachable), so both [wrpkru]s are elided.
    - [Full]: the general case — stack switch, exception-handler setup,
      and under ColorGuard a PKRU write each way. *)
type hostcall_class = Pure | Readonly | Full

val register_import :
  ?clazz:hostcall_class -> engine -> string -> (instance -> int64 array -> int64) -> unit
(** Provide a host (WASI-style) function for a module import; arity comes
    from the import's type. Calls transition out of the sandbox, charged
    according to [clazz] (default [Full], the conservative price). *)

(** {1 Instances} *)

val instantiate : engine -> instance
(** Allocate the next free slot and bring it up copy-on-write: the slot's
    heap and host block are backed by the engine's baked module image
    (data segments, vmctx template), so instantiation performs only O(1)
    per-slot vmctx writes — a cold slot additionally maps its host block
    and registers the backing. Raises {!Fault}[ Pool_exhausted] when no
    slot is free, [Failure] if mapping fails. *)

val try_instantiate : engine -> (instance, fault) result
(** Like {!instantiate} but returns [Error Pool_exhausted] instead of
    raising. *)

val instantiate_queued :
  engine -> ticket:int -> [ `Ready of instance | `Wait | `Rejected ]
(** Admission with a bounded FIFO retry queue instead of failing: when no
    slot is free the caller's [ticket] is queued ([`Wait]) up to the
    engine's [retry_queue_capacity], beyond which new tickets are
    [`Rejected] (load shedding). Re-present the same ticket after slots are
    recycled; the queue head claims the next free slot.

    Off-by-one semantics of the capacity bound: [retry_queue_capacity]
    counts {e parked} tickets only. The queue head — or a newcomer
    arriving at an empty queue — claims a freed slot without ever being
    counted, so up to [capacity] tickets wait while an unbounded stream
    of tickets can pass straight through. [`Rejected] is returned exactly
    when the presented ticket is not already parked {e and} the queue
    already holds [retry_queue_capacity] tickets. A parked ticket is
    never rejected on re-presentation. *)

val waiting : engine -> int
(** Tickets currently parked: the retry queue, or the admission queue
    when adaptive admission is armed ({!set_admission}). *)

val num_slots : engine -> int
(** Slot-pool capacity of the engine ([4096] for the [Simple]
    allocator). *)

(** {1 Adaptive admission}

    A CoDel-style controlled-delay queue over the slot pool plus a
    token-bucket rate limiter per tenant, replacing the blind FIFO
    reject of {!instantiate_queued}. The controller runs at {e dequeue},
    so the load it sheds is the load that waited longest — the slowest
    requests — never random arrivals. Time is the caller's simulated
    clock (nanoseconds), passed on every {!admit}. *)

type admission_config = Rt_types.admission_config = {
  target_delay_ns : float;
      (** CoDel target sojourn: queueing delay the controller tries to
          keep head-of-line sojourn below. *)
  interval_ns : float;
      (** How long sojourn must stay above target before the controller
          starts shedding; successive sheds tighten as interval/√n. *)
  ticket_deadline_ns : float;
      (** Hard per-ticket sojourn bound — a ticket parked longer than
          this is shed unconditionally on its next presentation. *)
  tenant_rate : float;  (** bucket refill, tokens per simulated second *)
  tenant_burst : float;  (** bucket capacity, [>= 1] *)
}

val default_admission : admission_config
(** 100 µs target, 500 µs interval, 2 ms ticket deadline, 10k req/s per
    tenant with a burst of 16. *)

type shed_reason =
  | Shed_sojourn  (** CoDel control law or the hard ticket deadline *)
  | Shed_rate_limited  (** the tenant's token bucket was empty *)
  | Shed_queue_full  (** the admission queue is at [retry_queue_capacity] *)

val shed_reason_code : shed_reason -> int
(** Stable wire code ([0]/[1]/[2]) matching the trace-event reason. *)

val shed_reason_name : shed_reason -> string

val set_admission : engine -> admission_config option -> unit
(** Arm (or with [None] disarm) adaptive admission. Arming resets the
    controller; parked retry-queue tickets are unaffected (the two
    queues are independent — use one admission style per engine).
    Raises [Invalid_argument] on non-positive parameters. *)

val set_admission_pressure : engine -> float -> unit
(** Scale the armed controller's target and deadline by [factor]
    ([0 < factor <= 1]; [1.0] restores normal service). The degradation
    ladder uses this to tighten admission under sustained overload.
    No-op when admission is not armed. *)

val set_slot_reserve : engine -> int -> unit
(** Withhold [n] slots from allocation — {!instantiate} behaves as if
    the pool were [n] slots smaller. The degradation ladder uses this to
    shrink the warm pool, keeping headroom for recycling bursts. Raises
    [Invalid_argument] unless [0 <= n < max_slots]. *)

val admit :
  engine ->
  ticket:int ->
  tenant:int ->
  now:float ->
  [ `Ready of instance | `Wait | `Shed of shed_reason ]
(** Present [ticket] (owned by [tenant]) for admission at simulated time
    [now]. With admission armed: new arrivals are charged one token from
    the tenant's bucket, then either granted a slot immediately, parked
    ([`Wait], up to [retry_queue_capacity]), or shed; parked tickets are
    re-presented and the queue head is granted the next free slot unless
    the CoDel controller or the ticket deadline sheds it. A shed ticket
    is forgotten — re-presenting it counts as a new arrival. Without
    admission armed, this delegates to {!instantiate_queued} (mapping
    [`Rejected] to [`Shed Shed_queue_full]). Emits admission trace
    events and bumps the [m_admitted]/[m_adm_*] metrics. *)

val release : instance -> unit
(** Recycle the instance's slot: drop only the pages this tenant actually
    dirtied — heap {e and} host block (vmctx page + host stack), so nothing
    leaks to the next tenant — reverting them to the pristine module image,
    and return the slot to the allocator's free list. O(dirty pages), not
    O(heap size); MPK colors survive in the PTEs (the §7 contrast with
    MTE). *)

val kill : instance -> unit
(** Crash-recovery teardown: drop the tenant's dirty pages as {!release}
    does, fence every page the slot ever mapped to PROT_NONE (so a stale
    activation faults rather than touching the next tenant), and recycle
    slot and color. Idempotent; the engine keeps serving other
    instances. *)

val live : instance -> bool
(** False once the instance has been released or killed. *)

val dirty_heap_pages : instance -> int
(** OS pages of this instance's heap privatized (written) since the slot
    was last recycled — the exact page count the next recycle will pay. *)

val instance_id : instance -> int
val heap_base : instance -> int
val color : instance -> int
val memory_pages : instance -> int

val read_memory : instance -> addr:int -> len:int -> string
val write_memory : instance -> addr:int -> string -> unit

(** {1 Calls} *)

val invoke : ?fuel:int -> instance -> string -> int64 list -> (int64, trap) result
(** Call an export; the result is the raw 64-bit return register (0 for
    void functions). Raises [Not_found] for unknown exports, {!Fault} on
    fuel exhaustion or a dead instance. The instance survives a trap (the
    caller decides); use {!invoke_protected} for crash-recovery
    semantics. *)

val invoke_protected : ?fuel:int -> instance -> string -> int64 list -> (int64, fault) result
(** Fault-containing call: any sandbox misbehavior (trap, fuel exhaustion)
    kills the instance, recycles its slot, and comes back as [Error] —
    nothing sandbox-attributable escapes as a host exception. *)

(** {2 Epoch-style preemptible calls (§6.4.3)} *)

type activation

val start_call : ?deadline_fuel:int -> instance -> string -> int64 list -> activation
(** [deadline_fuel] arms the watchdog: once the activation has consumed
    that much fuel across its epochs without finishing, the next {!step}
    kills the instance and reports [`Fault Fuel_exhausted]. *)

val step :
  activation ->
  fuel:int ->
  [ `Done of int64 | `Trapped of trap | `More | `Fault of fault ]
(** Run up to [fuel] instructions of the activation, saving/restoring the
    machine context around it — the user-level context switch. [`More]
    means the epoch expired; call {!step} again later. [`Trapped] kills
    the instance (slot recycled) before returning; [`Fault] reports a
    watchdog kill ([Fuel_exhausted]) or a stepped-after-death activation
    ([Instance_dead]). *)

(** {1 Fault attribution} *)

val last_fault_info : engine -> Sfi_machine.Machine.fault_info option
(** The faulting address/direction of the most recent access trap on this
    engine's machine, as a SIGSEGV handler would read from [siginfo_t]. *)

val attribute_address : engine -> int -> [ `Slot of int | `Guard of int | `Host ]
(** Attribute a virtual address to a linear-memory slot, the guard region
    after a slot, or host memory — turning a faulting address into "which
    tenant misbehaved". *)

(** {1 SFI sanitizer}

    A shadow policy over {!Sfi_machine.Machine.set_sanitizer}: while armed,
    every data access of the machine must land inside the current
    instance's own regions (heap slot up to its live memory bound, vmctx
    page, host stack, the shared indirect-call tables) and — under
    ColorGuard — run with exactly the sandbox's PKRU image; every indirect
    branch must resolve inside the code region. Accesses that trap are
    already contained and never consulted; the sanitizer exists to catch
    the accesses the hardware would silently allow (e.g. a neighbour's
    mapped page inside a deliberately weakened guard region). *)

type violation = {
  v_kind : [ `Read | `Write | `Branch ];
  v_addr : int;
  v_len : int;
  v_pc : int;  (** instruction index at the fault *)
  v_instr : string;  (** the faulting instruction, printed *)
  v_instr_count : int;  (** instructions retired when it fired *)
  v_attribution : [ `Slot of int | `Guard of int | `Host ];
  v_detail : string;
}

exception Sanitizer_violation of violation
(** Raised out of {!invoke} (and friends) at the faulting instruction. *)

val pp_violation : Format.formatter -> violation -> unit
val arm_sanitizer : engine -> unit
val disarm_sanitizer : engine -> unit

val read_global : instance -> int -> int64
(** Raw bits of global [i] in the instance's vmctx — the compiled-side
    counterpart of {!Sfi_wasm.Interp.global_value} for differential
    checks. *)

val vmctx_addr : instance -> int
(** Address of the instance's vmctx block (for harnesses that deliberately
    corrupt runtime state, e.g. the sanitizer self-test). *)

(** {1 Metrics} *)

val transitions : engine -> int
(** One-way transitions performed (in + out). *)

(** Immutable snapshot of the engine's lifecycle and transition counters,
    all monotonic until {!reset_metrics}. *)
type metrics = {
  m_transitions : int;  (** one-way sandbox crossings *)
  m_calls_pure : int;  (** hostcalls through the [Pure] springboard *)
  m_calls_readonly : int;  (** hostcalls through the [Readonly] springboard *)
  m_calls_full : int;  (** hostcalls through the full springboard *)
  m_pkru_writes_elided : int;
      (** [wrpkru]s a full transition would have executed but the fast path
          skipped (cheap-class hostcalls, unchanged-PKRU exits) *)
  m_pages_zeroed_on_recycle : int;  (** total dirty pages dropped by recycles *)
  m_instantiations_cold : int;  (** first-use slot bring-ups *)
  m_instantiations_warm : int;  (** recycled-slot reuses *)
  m_admitted : int;  (** slot grants through {!admit} *)
  m_adm_queued : int;  (** tickets parked by the admission controller *)
  m_shed_sojourn : int;  (** CoDel / ticket-deadline sheds *)
  m_shed_rate_limited : int;  (** per-tenant token-bucket sheds *)
  m_shed_queue_full : int;  (** queue-at-capacity sheds (incl. FIFO rejects) *)
}

val metrics : engine -> metrics

val elapsed_ns : engine -> float
val reset_metrics : engine -> unit

val domain_metrics : unit -> metrics
(** Aggregate of the same counters across {e every} engine the calling
    domain has exercised since the last {!reset_domain_metrics} —
    including engines created and discarded inside workload helpers
    (e.g. {!Sfi_workloads.Kernel.run}), which the caller never sees.
    This is what lets a bench harness attach a metrics snapshot to any
    experiment that runs an engine. *)

val reset_domain_metrics : unit -> unit

(** {2 Cross-domain harvest}

    The per-domain counters behind {!domain_metrics} live in
    [Domain.DLS], so they die with their worker domain: reading
    [domain_metrics ()] in a parent after [Domain.join] observes {e
    none} of the child's work. Any multi-domain harness must snapshot
    {!domain_metrics} {e inside} each worker (before the domain
    returns) and combine the snapshots with {!merged_metrics} — this is
    what the sharded FaaS layer ({!Sfi_faas.Shard}) does per shard. *)

val zero_metrics : metrics
(** All-zero snapshot — the identity of {!add_metrics}. *)

val add_metrics : metrics -> metrics -> metrics
(** Field-wise sum of two snapshots. *)

val merged_metrics : metrics list -> metrics
(** Field-wise sum of per-domain snapshots, each taken with
    {!domain_metrics} on the domain that did the work. *)

val metrics_fields : metrics -> (string * float) list
(** The snapshot as stable [(field, value)] pairs — one entry per
    counter, in declaration order. The naming backbone for exported
    gauges and flight-recorder snapshots. *)
