(* The instance lifecycle: slot claim/recycle, copy-on-write
   instantiation, memory growth, teardown.

   Instantiation is Wasmtime-style CoW: the per-module image (heap data
   segments + vmctx template, baked once per engine by {!bake_heap_image} /
   {!bake_vmctx_image}) backs every slot via {!Sfi_vmem.Space.set_backing}.
   A cold slot maps its host block and registers the backing; a warm slot
   does neither — the recycle at release/kill already dropped the dead
   tenant's private pages, so the slot reads as a pristine image again.
   Both paths then perform only O(1) per-slot vmctx writes, making
   instantiate/recycle O(dirty pages) instead of O(heap size). *)

open Rt_types
module Mpk = Sfi_vmem.Mpk
module Prot = Sfi_vmem.Prot
module Trace = Sfi_trace.Trace

let slot_capacity_pages e =
  match e.allocator with
  | Simple { reservation } -> reservation / wasm_page
  | Pool layout -> layout.Pool.params.Pool.max_memory_bytes / wasm_page

let slot_heap_base e slot =
  match e.allocator with
  | Simple { reservation } ->
      (* Keep a 4 GiB guard window after each reservation. *)
      slab_base + (slot * (reservation + (4 * Sfi_util.Units.gib)))
  | Pool layout -> slab_base + Pool.slot_base layout slot

let slot_color e slot =
  match e.allocator with Simple _ -> 0 | Pool layout -> Pool.color_of_slot layout slot

(* [slot_reserve] slots are withheld from allocation (degradation
   ladder): refuse a claim once live instances reach the shrunken pool
   size, regardless of which free list the slot would come from. *)
let claim_slot e =
  let live = e.next_slot - List.length e.free_slots in
  if live >= e.max_slots - e.slot_reserve then None
  else
    match e.free_slots with
    | s :: rest ->
        e.free_slots <- rest;
        Some s
    | [] ->
        if e.next_slot >= e.max_slots then None
        else begin
          let s = e.next_slot in
          e.next_slot <- s + 1;
          Some s
        end

(* --- vmctx accessors --- *)

let write_vmctx64 e inst off v = Space.write64 e.space (inst.vmctx + off) v

let set_memory_bound e inst =
  write_vmctx64 e inst Codegen.vmctx_memory_bytes (Int64.of_int (inst.pages * wasm_page))

let sandbox_pkru_image inst =
  if inst.inst_color = 0 then Mpk.allow_all
  else Mpk.allow_only [ Mpk.default_key; inst.inst_color ]

(* --- the baked module image --- *)

let bake_heap_image (m : W.module_) =
  Space.image_of_data (List.map (fun { W.doffset; dbytes } -> (doffset, dbytes)) m.W.data)

let bake_vmctx_image (m : W.module_) ~min_pages =
  let nglobals = Array.length m.W.globals in
  let len =
    max 4096 (Sfi_util.Units.align_up (Codegen.vmctx_globals + (8 * nglobals)) 4096)
  in
  let b = Bytes.make len '\000' in
  Bytes.set_int64_le b Codegen.vmctx_memory_bytes (Int64.of_int (min_pages * wasm_page));
  Bytes.set_int64_le b Codegen.vmctx_pkru_host (Int64.of_int Mpk.allow_all);
  Array.iteri
    (fun i (g : W.global) ->
      let bits =
        match g.W.ginit with
        | W.V_i32 v -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
        | W.V_i64 v -> v
      in
      Bytes.set_int64_le b (Codegen.vmctx_globals + (8 * i)) bits)
    m.W.globals;
  Space.image_of_data [ (0, Bytes.to_string b) ]

(* --- memory mapping and growth --- *)

let map_heap_range e inst ~from_page ~to_page =
  if to_page > from_page then begin
    let addr = inst.heap + (from_page * wasm_page) in
    let len = (to_page - from_page) * wasm_page in
    ok_exn "map heap" (Space.map e.space ~addr ~len ~prot:Prot.rw);
    if inst.inst_color <> 0 then
      ok_exn "color heap" (Space.pkey_protect e.space ~addr ~len ~prot:Prot.rw ~key:inst.inst_color)
  end

let set_accessible e inst ~pages =
  let mapped = try Hashtbl.find e.slot_mapped_pages inst.id with Not_found -> 0 in
  if pages > mapped then begin
    (* Make the already-mapped prefix accessible again, then extend. *)
    if mapped > 0 then
      ok_exn "reprotect heap"
        (Space.pkey_protect e.space ~addr:inst.heap ~len:(mapped * wasm_page) ~prot:Prot.rw
           ~key:inst.inst_color);
    map_heap_range e inst ~from_page:mapped ~to_page:pages;
    Hashtbl.replace e.slot_mapped_pages inst.id pages
  end
  else begin
    if pages > 0 then
      ok_exn "reprotect heap"
        (Space.pkey_protect e.space ~addr:inst.heap ~len:(pages * wasm_page) ~prot:Prot.rw
           ~key:inst.inst_color);
    if mapped > pages then
      ok_exn "fence heap"
        (Space.pkey_protect e.space
           ~addr:(inst.heap + (pages * wasm_page))
           ~len:((mapped - pages) * wasm_page)
           ~prot:Prot.none ~key:inst.inst_color)
  end

let grow_memory e inst delta =
  if delta < 0 then -1
  else if delta = 0 then inst.pages
  else begin
    let new_pages = inst.pages + delta in
    if new_pages > inst.max_pages || new_pages > slot_capacity_pages e then -1
    else begin
      let old = inst.pages in
      set_accessible e inst ~pages:new_pages;
      inst.pages <- new_pages;
      set_memory_bound e inst;
      old
    end
  end

(* --- instantiate / recycle / teardown --- *)

let instantiate_slot e slot =
  let host_block = host_area_base + (slot * host_block_stride) in
  let inst =
    {
      engine = e;
      id = slot;
      vmctx = host_block;
      heap = slot_heap_base e slot;
      stack_top = host_block + host_stack_offset + host_stack_bytes;
      inst_color = slot_color e slot;
      pages = e.min_pages;
      max_pages = min e.decl_max_pages (slot_capacity_pages e);
      live = true;
    }
  in
  (if not (Hashtbl.mem e.slot_mapped_pages slot) then begin
     (* Cold slot: map the host block (vmctx page + host stack, default
        pkey 0) and attach the module image copy-on-write behind both the
        host block and the heap. Nothing is copied here — pages privatize
        lazily on first write. *)
     ok_exn "map vmctx" (Space.map e.space ~addr:host_block ~len:4096 ~prot:Prot.rw);
     ok_exn "map stack"
       (Space.map e.space ~addr:(host_block + host_stack_offset) ~len:host_stack_bytes
          ~prot:Prot.rw);
     ok_exn "back host block"
       (Space.set_backing e.space ~addr:host_block ~len:host_block_len e.vmctx_image);
     let cap = slot_capacity_pages e in
     if cap > 0 then
       ok_exn "back heap"
         (Space.set_backing e.space ~addr:inst.heap ~len:(cap * wasm_page) e.heap_image);
     Hashtbl.replace e.slot_mapped_pages slot 0;
     e.counters.instantiations_cold <- e.counters.instantiations_cold + 1;
     (domain_counters ()).instantiations_cold <-
       (domain_counters ()).instantiations_cold + 1;
     Trace.instantiate e.trace ~sandbox:slot ~warm:false
   end
   else begin
     (* Warm slot: the recycle at release/kill time already reverted every
        page the dead tenant dirtied back to the image. *)
     e.counters.instantiations_warm <- e.counters.instantiations_warm + 1;
     (domain_counters ()).instantiations_warm <-
       (domain_counters ()).instantiations_warm + 1;
     Trace.instantiate e.trace ~sandbox:slot ~warm:true
   end);
  set_accessible e inst ~pages:e.min_pages;
  (* Per-slot vmctx fields — the only writes an instantiation performs.
     Memory bound, host PKRU image and global initial values come from the
     baked template. *)
  write_vmctx64 e inst Codegen.vmctx_heap_base (Int64.of_int inst.heap);
  write_vmctx64 e inst Codegen.vmctx_pkru_sandbox (Int64.of_int (sandbox_pkru_image inst));
  (* Stack exhaustion limit: leave a page of headroom above the guard. *)
  write_vmctx64 e inst Codegen.vmctx_stack_limit
    (Int64.of_int (host_block + host_stack_offset + 4096));
  inst

(* Zero the dead tenant's footprint: drop only the pages it actually
   dirtied — heap AND host block (vmctx + host stack), which the
   pre-refactor runtime never re-zeroed between tenants. *)
let recycle_slot e inst =
  let dropped what r =
    match r with Ok n -> n | Error msg -> failwith ("recycle " ^ what ^ ": " ^ msg)
  in
  let host =
    dropped "host block" (Space.recycle e.space ~addr:inst.vmctx ~len:host_block_len)
  in
  let cap = slot_capacity_pages e in
  let heap =
    if cap = 0 then 0
    else dropped "heap" (Space.recycle e.space ~addr:inst.heap ~len:(cap * wasm_page))
  in
  e.counters.pages_zeroed_on_recycle <- e.counters.pages_zeroed_on_recycle + host + heap;
  (domain_counters ()).pages_zeroed_on_recycle <-
    (domain_counters ()).pages_zeroed_on_recycle + host + heap;
  Trace.recycle e.trace ~sandbox:inst.id ~pages:(host + heap)

let release inst =
  let e = inst.engine in
  if inst.live then begin
    inst.live <- false;
    recycle_slot e inst;
    (match e.current with Some i when i == inst -> e.current <- None | _ -> ());
    e.free_slots <- inst.id :: e.free_slots
  end

let kill inst =
  let e = inst.engine in
  if inst.live then begin
    inst.live <- false;
    (* Drop the tenant's dirty pages first, then fence everything the slot
       ever mapped to PROT_NONE so a stale activation faults instead of
       reading the next tenant's memory. A fresh [instantiate] of the slot
       re-opens it. *)
    recycle_slot e inst;
    set_accessible e inst ~pages:0;
    (match e.current with Some i when i == inst -> e.current <- None | _ -> ());
    e.free_slots <- inst.id :: e.free_slots;
    Trace.kill e.trace ~sandbox:inst.id
  end

let dirty_heap_pages inst = Space.dirty_pages inst.engine.space ~addr:inst.heap
