(* The engine façade. The lifecycle layers live in {!Rt_types} (shared
   records), {!Instance} (slot claim / CoW instantiate / recycle / kill)
   and {!Transition} (boundary cost model); this module owns engine
   creation, hostcall dispatch, the retry queue, the invoke/activation
   machinery and the SFI sanitizer, and re-exports the lifecycle
   operations behind the historical [Runtime] interface. *)

include Rt_types
module Mpk = Sfi_vmem.Mpk
module Prot = Sfi_vmem.Prot
module Strategy = Sfi_core.Strategy

let machine e = e.machine
let space e = e.space
let compiled e = e.compiled
let instance_id i = i.id
let heap_base i = i.heap
let color i = i.inst_color
let memory_pages i = i.pages

let strategy e = e.compiled.Codegen.config.Codegen.strategy

(* --- hostcalls --- *)

let hostcall_handler e m id =
  let inst =
    match e.current with Some i -> i | None -> failwith "hostcall outside an invocation"
  in
  if id = hostcall_halt then raise (Machine.Hostcall_exit 0)
  else if id = Codegen.hostcall_memory_grow then begin
    let delta = Int64.to_int (Machine.get_reg m X.RDI) in
    Machine.set_reg m X.RAX (Int64.of_int (Instance.grow_memory e inst delta))
  end
  else begin
    let imports = e.compiled.Codegen.source.W.imports in
    if id < 0 || id >= Array.length imports then failwith "unknown hostcall id";
    let { W.iname; itype } = imports.(id) in
    let ft = e.compiled.Codegen.source.W.types.(itype) in
    let nargs = List.length ft.W.params in
    let args =
      Array.init nargs (fun k ->
          Machine.get_reg m (match k with 0 -> X.RDI | 1 -> X.RSI | _ -> X.RDX))
    in
    match Hashtbl.find_opt e.imports iname with
    | Some { im_fn; im_class } ->
        (* A hostcall is a transition pair: out of and back into the
           sandbox. What the pair costs depends on the class the import
           was registered with. *)
        Transition.charge_hostcall e inst im_class;
        let result = im_fn inst args in
        Machine.set_reg m X.RAX result
    | None -> failwith ("unresolved import: " ^ iname)
  end

(* --- engine creation --- *)

let create_engine ?cost ?tlb ?(fsgsbase_available = true) ?max_map_count
    ?(allocator = Simple { reservation = 4 * Sfi_util.Units.gib })
    ?(transition_overhead_cycles = 55) ?(pure_springboard_cycles = 10)
    ?(readonly_springboard_cycles = 24) ?(retry_queue_capacity = 64) ?code_base ?engine
    (compiled : Codegen.compiled) =
  let space = Space.create ?max_map_count () in
  let machine = Machine.create ?cost ?tlb ~fsgsbase_available ?code_base space in
  (* Default to the adaptive tier: threaded dispatch with profiler-driven
     superblock promotion of hot blocks — observationally identical to
     [Threaded] (lockstep- and fuzzer-pinned) and strictly faster on
     host time once a workload has hot loops. *)
  Machine.set_engine machine (match engine with Some k -> k | None -> Machine.Adaptive);
  Machine.load_program machine compiled.Codegen.program;
  (* Indirect-call tables: code addresses and type ids, host memory. *)
  let cfg = compiled.Codegen.config in
  let table_len = Array.length compiled.Codegen.table_entries in
  let table_area = Sfi_util.Units.align_up (max 4096 (8 * table_len)) 4096 in
  ok_exn "map table"
    (Space.map space ~addr:cfg.Codegen.table_base ~len:table_area ~prot:Prot.r);
  ok_exn "map table types"
    (Space.map space ~addr:cfg.Codegen.table_types_base ~len:table_area ~prot:Prot.r);
  Array.iteri
    (fun i (label, tyid) ->
      Space.write64 space
        (cfg.Codegen.table_base + (8 * i))
        (Int64.of_int (Machine.label_address machine label));
      Space.write32 space (cfg.Codegen.table_types_base + (4 * i)) (Int32.of_int tyid))
    compiled.Codegen.table_entries;
  let max_slots =
    match allocator with
    | Simple _ -> 4096
    | Pool layout -> layout.Pool.params.Pool.num_slots
  in
  (* Bake the module image once: every instantiation afterwards maps it
     copy-on-write instead of rewriting data segments and vmctx fields. *)
  let src = compiled.Codegen.source in
  let min_pages, decl_max_pages =
    match src.W.memory with
    | Some { W.min_pages; max_pages } ->
        (min_pages, match max_pages with Some mx -> mx | None -> 65536)
    | None -> (0, 0)
  in
  let e =
    {
      machine;
      space;
      compiled;
      allocator;
      max_slots;
      free_slots = [];
      next_slot = 0;
      slot_mapped_pages = Hashtbl.create 64;
      imports = Hashtbl.create 8;
      current = None;
      transition_overhead_cycles;
      pure_springboard_cycles;
      readonly_springboard_cycles;
      counters = fresh_counters ();
      retry_capacity = retry_queue_capacity;
      waiters = Queue.create ();
      waiter_set = Hashtbl.create 64;
      admission = None;
      slot_reserve = 0;
      heap_image = Instance.bake_heap_image src;
      vmctx_image = Instance.bake_vmctx_image src ~min_pages;
      min_pages;
      decl_max_pages;
      trace = Sfi_trace.Trace.null;
    }
  in
  Machine.set_hostcall_handler machine (fun m id -> hostcall_handler e m id);
  e

(* --- tracing --- *)

let trace e = e.trace

let set_trace e sink =
  e.trace <- sink;
  (* The machine wires the sink's clock to its cycle counter and the dTLB
     to its fill/evict events; the runtime layers read [e.trace] on every
     transition, lifecycle and fault path. *)
  Machine.set_trace e.machine sink

let register_import ?(clazz = Full) e name f =
  Hashtbl.replace e.imports name { im_fn = f; im_class = clazz }

(* --- instances (lifecycle re-exported from {!Instance}) --- *)

let try_instantiate e =
  match Instance.claim_slot e with
  | None -> Error Pool_exhausted
  | Some slot -> Ok (Instance.instantiate_slot e slot)

let instantiate e =
  match try_instantiate e with Ok inst -> inst | Error f -> raise (Fault f)

let instantiate_queued e ~ticket =
  (* Only the queue head (or a newcomer arriving at an empty queue) may
     claim a slot; everyone else keeps their FIFO position. Membership is
     O(1) via [waiter_set]; the queue itself stays the FIFO order. *)
  let queued = Hashtbl.mem e.waiter_set ticket in
  let is_head = Queue.peek_opt e.waiters = Some ticket in
  let enqueue () =
    if Queue.length e.waiters >= e.retry_capacity then `Rejected
    else begin
      Queue.push ticket e.waiters;
      Hashtbl.replace e.waiter_set ticket ();
      `Wait
    end
  in
  if is_head || ((not queued) && Queue.is_empty e.waiters) then
    match try_instantiate e with
    | Ok inst ->
        if is_head then begin
          ignore (Queue.pop e.waiters);
          Hashtbl.remove e.waiter_set ticket
        end;
        `Ready inst
    | Error Pool_exhausted -> if queued then `Wait else enqueue ()
    | Error f -> raise (Fault f)
  else if queued then `Wait
  else enqueue ()

let num_slots e = e.max_slots

let waiting e =
  match e.admission with
  | None -> Queue.length e.waiters
  | Some a -> Hashtbl.length a.amember

(* --- adaptive admission: CoDel queue + per-tenant token buckets --- *)

type shed_reason = Shed_sojourn | Shed_rate_limited | Shed_queue_full

let shed_reason_code = function
  | Shed_sojourn -> 0
  | Shed_rate_limited -> 1
  | Shed_queue_full -> 2

let shed_reason_name = function
  | Shed_sojourn -> "sojourn"
  | Shed_rate_limited -> "rate-limited"
  | Shed_queue_full -> "queue-full"

let default_admission =
  {
    target_delay_ns = 100_000.0;
    interval_ns = 500_000.0;
    ticket_deadline_ns = 2_000_000.0;
    tenant_rate = 10_000.0;
    tenant_burst = 16.0;
  }

let set_admission e = function
  | None -> e.admission <- None
  | Some acfg ->
      if
        acfg.target_delay_ns <= 0.0 || acfg.interval_ns <= 0.0
        || acfg.ticket_deadline_ns <= 0.0 || acfg.tenant_rate <= 0.0
        || acfg.tenant_burst < 1.0
      then invalid_arg "Runtime.set_admission: parameters must be positive (burst >= 1)";
      e.admission <-
        Some
          {
            acfg;
            aqueue = Queue.create ();
            amember = Hashtbl.create 64;
            buckets = Hashtbl.create 64;
            first_above = -1.0;
            shed_run = 0;
            pressure = 1.0;
          }

let set_admission_pressure e factor =
  if factor <= 0.0 || factor > 1.0 then
    invalid_arg "Runtime.set_admission_pressure: factor must be in (0, 1]";
  match e.admission with None -> () | Some a -> a.pressure <- factor

let set_slot_reserve e n =
  if n < 0 || n >= e.max_slots then
    invalid_arg "Runtime.set_slot_reserve: reserve must leave at least one slot";
  e.slot_reserve <- n

let admit e ~ticket ~tenant ~now =
  let c = e.counters and dc = domain_counters () in
  let count_admit () =
    c.admitted <- c.admitted + 1;
    dc.admitted <- dc.admitted + 1
  in
  match e.admission with
  | None -> (
      (* Legacy path: the blind bounded-FIFO retry queue, with rejections
         mapped onto the capacity-shed reason so callers see one shape. *)
      match instantiate_queued e ~ticket with
      | `Ready _ as r ->
          count_admit ();
          r
      | `Wait -> `Wait
      | `Rejected ->
          c.adm_shed_capacity <- c.adm_shed_capacity + 1;
          dc.adm_shed_capacity <- dc.adm_shed_capacity + 1;
          `Shed Shed_queue_full)
  | Some a -> (
      let acfg = a.acfg in
      let target = acfg.target_delay_ns *. a.pressure in
      let deadline = acfg.ticket_deadline_ns *. a.pressure in
      (* Tickets shed while parked leave a stale queue entry behind; skip
         them lazily so the live head is always a member. *)
      let rec head () =
        match Queue.peek_opt a.aqueue with
        | Some (t, _) when not (Hashtbl.mem a.amember t) ->
            ignore (Queue.pop a.aqueue);
            head ()
        | h -> h
      in
      let grant ~sojourn inst =
        count_admit ();
        Sfi_trace.Trace.admission_admit e.trace ~tenant ~sojourn:(int_of_float sojourn);
        `Ready inst
      in
      let shed reason ~sojourn =
        (match reason with
        | Shed_sojourn ->
            c.adm_shed_sojourn <- c.adm_shed_sojourn + 1;
            dc.adm_shed_sojourn <- dc.adm_shed_sojourn + 1
        | Shed_rate_limited ->
            c.adm_shed_rate <- c.adm_shed_rate + 1;
            dc.adm_shed_rate <- dc.adm_shed_rate + 1
        | Shed_queue_full ->
            c.adm_shed_capacity <- c.adm_shed_capacity + 1;
            dc.adm_shed_capacity <- dc.adm_shed_capacity + 1);
        Sfi_trace.Trace.admission_shed e.trace ~tenant ~sojourn:(int_of_float sojourn)
          ~reason:(shed_reason_code reason);
        `Shed reason
      in
      match Hashtbl.find_opt a.amember ticket with
      | Some enq ->
          let sojourn = now -. enq in
          if sojourn > deadline then begin
            (* Hard per-ticket bound: a ticket that waited this long has
               lost its client; serving it would be wasted work. *)
            Hashtbl.remove a.amember ticket;
            shed Shed_sojourn ~sojourn
          end
          else begin
            match head () with
            | Some (t, _) when t = ticket ->
                (* Head re-presentation. The CoDel control law runs at
                   dequeue, so what gets shed is the slowest load — the
                   requests that waited longest — never random arrivals. *)
                let codel_shed =
                  if sojourn < target then begin
                    a.first_above <- -1.0;
                    a.shed_run <- 0;
                    false
                  end
                  else if a.first_above < 0.0 then begin
                    a.first_above <- now +. acfg.interval_ns;
                    false
                  end
                  else if now >= a.first_above then begin
                    a.shed_run <- a.shed_run + 1;
                    a.first_above <-
                      now +. (acfg.interval_ns /. sqrt (float_of_int (a.shed_run + 1)));
                    true
                  end
                  else false
                in
                if codel_shed then begin
                  ignore (Queue.pop a.aqueue);
                  Hashtbl.remove a.amember ticket;
                  shed Shed_sojourn ~sojourn
                end
                else begin
                  match try_instantiate e with
                  | Ok inst ->
                      ignore (Queue.pop a.aqueue);
                      Hashtbl.remove a.amember ticket;
                      grant ~sojourn inst
                  | Error Pool_exhausted -> `Wait
                  | Error f -> raise (Fault f)
                end
            | _ -> `Wait
          end
      | None -> (
          (* New arrival: charge the tenant's token bucket first. *)
          let bucket =
            match Hashtbl.find_opt a.buckets tenant with
            | Some b -> b
            | None ->
                let b = { tokens = acfg.tenant_burst; refilled_at = now } in
                Hashtbl.add a.buckets tenant b;
                b
          in
          let dt = now -. bucket.refilled_at in
          if dt > 0.0 then begin
            bucket.tokens <-
              Float.min acfg.tenant_burst
                (bucket.tokens +. (dt /. 1e9 *. acfg.tenant_rate));
            bucket.refilled_at <- now
          end;
          if bucket.tokens < 1.0 then shed Shed_rate_limited ~sojourn:0.0
          else begin
            bucket.tokens <- bucket.tokens -. 1.0;
            let enqueue () =
              if Hashtbl.length a.amember >= e.retry_capacity then
                shed Shed_queue_full ~sojourn:0.0
              else begin
                Queue.push (ticket, now) a.aqueue;
                Hashtbl.replace a.amember ticket now;
                c.adm_queued <- c.adm_queued + 1;
                dc.adm_queued <- dc.adm_queued + 1;
                Sfi_trace.Trace.admission_queue e.trace ~tenant
                  ~depth:(Hashtbl.length a.amember);
                `Wait
              end
            in
            match head () with
            | None -> (
                match try_instantiate e with
                | Ok inst -> grant ~sojourn:0.0 inst
                | Error Pool_exhausted -> enqueue ()
                | Error f -> raise (Fault f))
            | Some _ -> enqueue ()
          end))

let release = Instance.release
let kill = Instance.kill
let live inst = inst.live
let dirty_heap_pages = Instance.dirty_heap_pages

let read_memory inst ~addr ~len =
  Bytes.to_string (Space.read_bytes inst.engine.space ~addr:(inst.heap + addr) ~len)

let write_memory inst ~addr s =
  Space.write_bytes inst.engine.space ~addr:(inst.heap + addr) (Bytes.of_string s)

(* --- transitions and calls --- *)

let prepare_call inst name args =
  let e = inst.engine in
  let m = e.machine in
  e.current <- Some inst;
  Machine.set_seg_base m X.FS inst.vmctx;
  (* The native baseline's "absolute pointers": the base is implicit. *)
  if (strategy e).Strategy.addressing = Strategy.Direct then
    Machine.set_seg_base m X.GS inst.heap;
  (* Fail-closed PKRU: under ColorGuard, enter the call with the sandbox
     image already installed (the entry-sequence [wrpkru] then re-writes the
     same value). A mutant that skips the entry [wrpkru] therefore runs
     restricted rather than with the host's all-access rights — modeling a
     trampoline that switches PKRU before jumping to untrusted code. The
     host stack and vmctx stay reachable (key 0). *)
  let entry_pkru =
    if e.compiled.Codegen.config.Codegen.colorguard && inst.inst_color <> 0 then
      Mpk.allow_only [ Mpk.default_key; inst.inst_color ]
    else Mpk.allow_all
  in
  Machine.set_pkru m entry_pkru;
  (* Caller-side argument pushes. *)
  let rsp = ref inst.stack_top in
  List.iter
    (fun a ->
      rsp := !rsp - 8;
      Space.write64 e.space !rsp a)
    args;
  Machine.set_reg m X.RSP (Int64.of_int !rsp);
  Transition.charge_entry e inst;
  Machine.start m ~entry:(Codegen.entry_label e.compiled name)

(* Emit a [fault] event carrying the machine's trap attribution (the
   faulting address and direction for access traps, [-1] otherwise). *)
let trace_fault e inst =
  if Sfi_trace.Trace.enabled e.trace then begin
    let addr, write =
      match Machine.last_fault_info e.machine with
      | Some { Machine.fault_addr; fault_write } -> (fault_addr, fault_write)
      | None -> (-1, false)
    in
    Sfi_trace.Trace.fault e.trace ~sandbox:inst.id ~addr ~write
  end

let finish inst status =
  let e = inst.engine in
  match status with
  | Machine.Halted ->
      Transition.charge_exit e inst;
      `Done (Machine.get_reg e.machine X.RAX)
  | Machine.Trapped k ->
      (* Fault first, exit-charge second: the instant then falls inside
         the transition span it aborted. *)
      trace_fault e inst;
      Transition.charge_exit e inst;
      `Trapped k
  | Machine.Yielded -> `More

let invoke ?(fuel = 1 lsl 30) inst name args =
  if not inst.live then raise (Fault Instance_dead);
  prepare_call inst name args;
  match finish inst (Machine.run inst.engine.machine ~fuel) with
  | `Done v -> Ok v
  | `Trapped k -> Error k
  | `More -> raise (Fault Fuel_exhausted)

let invoke_protected ?(fuel = 1 lsl 30) inst name args =
  if not inst.live then Error Instance_dead
  else begin
    prepare_call inst name args;
    match finish inst (Machine.run inst.engine.machine ~fuel) with
    | `Done v -> Ok v
    | `Trapped k ->
        Instance.kill inst;
        Error (Trap k)
    | `More ->
        (* The activation ran out of fuel mid-call: the transition span is
           still open; record the fault, close the span, then kill. *)
        Sfi_trace.Trace.fault inst.engine.trace ~sandbox:inst.id ~addr:(-1)
          ~write:false;
        Sfi_trace.Trace.call_end inst.engine.trace ~sandbox:inst.id;
        Instance.kill inst;
        Error Fuel_exhausted
  end

type activation = {
  act_inst : instance;
  mutable ctx : Machine.context option;
  mutable done_ : bool;
  deadline : int option; (* fuel budget across the whole activation *)
  mutable spent : int; (* fuel consumed so far *)
}

let start_call ?deadline_fuel inst name args =
  if not inst.live then raise (Fault Instance_dead);
  prepare_call inst name args;
  let ctx = Machine.save_context inst.engine.machine in
  { act_inst = inst; ctx = Some ctx; done_ = false; deadline = deadline_fuel; spent = 0 }

let step act ~fuel =
  if act.done_ then invalid_arg "Runtime.step: activation already finished";
  if not act.act_inst.live then begin
    act.done_ <- true;
    `Fault Instance_dead
  end
  else begin
    let e = act.act_inst.engine in
    let m = e.machine in
    (match act.ctx with Some c -> Machine.restore_context m c | None -> ());
    e.current <- Some act.act_inst;
    match finish act.act_inst (Machine.run m ~fuel) with
    | `Done v ->
        act.done_ <- true;
        `Done v
    | `Trapped k ->
        act.done_ <- true;
        Instance.kill act.act_inst;
        `Trapped k
    | `More -> (
        act.ctx <- Some (Machine.save_context m);
        act.spent <- act.spent + fuel;
        (* Watchdog: a runaway activation that overruns its epoch deadline
           is killed rather than rescheduled forever. *)
        match act.deadline with
        | Some limit when act.spent >= limit ->
            act.done_ <- true;
            Sfi_trace.Trace.fault e.trace ~sandbox:act.act_inst.id ~addr:(-1)
              ~write:false;
            Sfi_trace.Trace.call_end e.trace ~sandbox:act.act_inst.id;
            Instance.kill act.act_inst;
            `Fault Fuel_exhausted
        | _ -> `More)
  end

let last_fault_info e = Machine.last_fault_info e.machine

let attribute_address e addr =
  if addr < slab_base then `Host
  else begin
    let stride, accessible, pre =
      match e.allocator with
      | Simple { reservation } -> (reservation + (4 * Sfi_util.Units.gib), reservation, 0)
      | Pool layout ->
          ( layout.Pool.slot_bytes,
            layout.Pool.params.Pool.max_memory_bytes,
            layout.Pool.pre_slot_guard_bytes )
    in
    let off = addr - slab_base - pre in
    if off < 0 then `Guard 0
    else begin
      let slot = off / stride in
      if slot >= e.max_slots then `Guard (e.max_slots - 1)
      else if off mod stride < accessible then `Slot slot
      else `Guard slot
    end
  end

(* --- SFI sanitizer ---

   A shadow policy installed into the machine's sanitizer hook: every data
   access that the hardware accepted must land inside the current
   instance's own regions (its heap slot up to the current memory bound,
   its vmctx page, its host stack, the shared indirect-call tables), and
   under ColorGuard the PKRU in force must be exactly the sandbox's own
   image. Every indirect branch target must resolve inside the code
   region. Violations surface as {!Sanitizer_violation} raised at the
   faulting instruction — strictly stronger than the architectural checks,
   which happily let a sandbox touch a neighbour's mapped pages. *)

type violation = {
  v_kind : [ `Read | `Write | `Branch ];
  v_addr : int;
  v_len : int;
  v_pc : int;
  v_instr : string;
  v_instr_count : int;
  v_attribution : [ `Slot of int | `Guard of int | `Host ];
  v_detail : string;
}

exception Sanitizer_violation of violation

let kind_name = function `Read -> "read" | `Write -> "write" | `Branch -> "branch"

let attribution_name = function
  | `Slot n -> Printf.sprintf "slot %d" n
  | `Guard n -> Printf.sprintf "guard after slot %d" n
  | `Host -> "host memory"

let pp_violation ppf v =
  Format.fprintf ppf
    "sanitizer: out-of-sandbox %s of %d byte(s) at 0x%x (%s) — instruction #%d `%s` (pc %d): %s"
    (kind_name v.v_kind) v.v_len v.v_addr (attribution_name v.v_attribution) v.v_instr_count
    v.v_instr v.v_pc v.v_detail

let table_area_bytes e =
  Sfi_util.Units.align_up (max 4096 (8 * Array.length e.compiled.Codegen.table_entries)) 4096

let violation e m ~kind ~addr ~len ~detail =
  let pc = Machine.pc m in
  let instr =
    match Machine.instr_at m pc with
    | Some i -> Format.asprintf "%a" Sfi_x86.Ast.pp_instr i
    | None -> "<no instruction>"
  in
  Sanitizer_violation
    {
      v_kind = kind;
      v_addr = addr;
      v_len = len;
      v_pc = pc;
      v_instr = instr;
      v_instr_count = (Machine.counters m).Machine.instructions;
      v_attribution = attribute_address e addr;
      v_detail = detail;
    }

let arm_sanitizer e =
  let cfg = e.compiled.Codegen.config in
  let tables = table_area_bytes e in
  Machine.set_sanitizer e.machine
    (Some
       (fun m ~kind ~addr ~len ->
         match e.current with
         | None -> () (* host-side use of the machine, not sandboxed code *)
         | Some inst -> (
             match kind with
             | Machine.San_branch ->
                 let base, code_len = Machine.code_bounds m in
                 if not (addr >= base && addr < base + code_len) then
                   raise
                     (violation e m ~kind:`Branch ~addr ~len:0
                        ~detail:"indirect branch target outside the code region")
             | Machine.San_read | Machine.San_write ->
                 let kind' = if kind = Machine.San_write then `Write else `Read in
                 let lo = addr and hi = addr + max 1 len in
                 let within a b = lo >= a && hi <= b in
                 let in_regions =
                   within inst.heap (inst.heap + (inst.pages * wasm_page))
                   || within inst.vmctx (inst.vmctx + 4096)
                   || within (inst.vmctx + host_stack_offset) inst.stack_top
                   || within cfg.Codegen.table_base (cfg.Codegen.table_base + tables)
                   || within cfg.Codegen.table_types_base
                        (cfg.Codegen.table_types_base + tables)
                 in
                 if not in_regions then
                   raise
                     (violation e m ~kind:kind' ~addr ~len
                        ~detail:
                          (Printf.sprintf
                             "outside the sandbox's slot bounds (heap 0x%x + %d pages)"
                             inst.heap inst.pages));
                 if cfg.Codegen.colorguard && inst.inst_color <> 0 then begin
                   let expected = Mpk.allow_only [ Mpk.default_key; inst.inst_color ] in
                   if Machine.get_pkru m <> expected then
                     raise
                       (violation e m ~kind:kind' ~addr ~len
                          ~detail:
                            (Printf.sprintf
                               "PKRU 0x%x in force instead of the sandbox image 0x%x (color %d)"
                               (Machine.get_pkru m) expected inst.inst_color))
                 end)))

let disarm_sanitizer e = Machine.set_sanitizer e.machine None

(* --- debugging accessors used by the fuzz harness --- *)

let read_global inst i =
  Space.read64 inst.engine.space (inst.vmctx + Codegen.vmctx_globals + (8 * i))

let vmctx_addr inst = inst.vmctx

(* --- metrics --- *)

type metrics = {
  m_transitions : int;
  m_calls_pure : int;
  m_calls_readonly : int;
  m_calls_full : int;
  m_pkru_writes_elided : int;
  m_pages_zeroed_on_recycle : int;
  m_instantiations_cold : int;
  m_instantiations_warm : int;
  m_admitted : int;
  m_adm_queued : int;
  m_shed_sojourn : int;
  m_shed_rate_limited : int;
  m_shed_queue_full : int;
}

let metrics_of_counters c =
  {
    m_transitions = c.transitions;
    m_calls_pure = c.calls_pure;
    m_calls_readonly = c.calls_readonly;
    m_calls_full = c.calls_full;
    m_pkru_writes_elided = c.pkru_writes_elided;
    m_pages_zeroed_on_recycle = c.pages_zeroed_on_recycle;
    m_instantiations_cold = c.instantiations_cold;
    m_instantiations_warm = c.instantiations_warm;
    m_admitted = c.admitted;
    m_adm_queued = c.adm_queued;
    m_shed_sojourn = c.adm_shed_sojourn;
    m_shed_rate_limited = c.adm_shed_rate;
    m_shed_queue_full = c.adm_shed_capacity;
  }

let metrics e = metrics_of_counters e.counters
let transitions e = e.counters.transitions
let elapsed_ns e = Machine.elapsed_ns e.machine

let reset_metrics e =
  Machine.reset_counters e.machine;
  reset_counters e.counters

(* Domain-local aggregate across every engine this domain has run —
   including engines created and dropped inside workload helpers, which a
   bench harness never sees directly. *)
let domain_metrics () = metrics_of_counters (domain_counters ())
let reset_domain_metrics () = reset_counters (domain_counters ())

let zero_metrics = metrics_of_counters (Rt_types.fresh_counters ())

let add_metrics a b =
  {
    m_transitions = a.m_transitions + b.m_transitions;
    m_calls_pure = a.m_calls_pure + b.m_calls_pure;
    m_calls_readonly = a.m_calls_readonly + b.m_calls_readonly;
    m_calls_full = a.m_calls_full + b.m_calls_full;
    m_pkru_writes_elided = a.m_pkru_writes_elided + b.m_pkru_writes_elided;
    m_pages_zeroed_on_recycle =
      a.m_pages_zeroed_on_recycle + b.m_pages_zeroed_on_recycle;
    m_instantiations_cold = a.m_instantiations_cold + b.m_instantiations_cold;
    m_instantiations_warm = a.m_instantiations_warm + b.m_instantiations_warm;
    m_admitted = a.m_admitted + b.m_admitted;
    m_adm_queued = a.m_adm_queued + b.m_adm_queued;
    m_shed_sojourn = a.m_shed_sojourn + b.m_shed_sojourn;
    m_shed_rate_limited = a.m_shed_rate_limited + b.m_shed_rate_limited;
    m_shed_queue_full = a.m_shed_queue_full + b.m_shed_queue_full;
  }

let merged_metrics snapshots = List.fold_left add_metrics zero_metrics snapshots

let metrics_fields m =
  let f = float_of_int in
  [
    ("transitions", f m.m_transitions);
    ("hostcalls_pure", f m.m_calls_pure);
    ("hostcalls_readonly", f m.m_calls_readonly);
    ("hostcalls_full", f m.m_calls_full);
    ("pkru_writes_elided", f m.m_pkru_writes_elided);
    ("pages_zeroed_on_recycle", f m.m_pages_zeroed_on_recycle);
    ("instantiations_cold", f m.m_instantiations_cold);
    ("instantiations_warm", f m.m_instantiations_warm);
    ("admission_admitted", f m.m_admitted);
    ("admission_queued", f m.m_adm_queued);
    ("admission_shed_sojourn", f m.m_shed_sojourn);
    ("admission_shed_rate_limited", f m.m_shed_rate_limited);
    ("admission_shed_queue_full", f m.m_shed_queue_full);
  ]
