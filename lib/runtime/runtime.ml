module X = Sfi_x86.Ast
module W = Sfi_wasm.Ast
module Space = Sfi_vmem.Space
module Mpk = Sfi_vmem.Mpk
module Prot = Sfi_vmem.Prot
module Machine = Sfi_machine.Machine
module Cost = Sfi_machine.Cost
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Strategy = Sfi_core.Strategy

type trap = X.trap_kind

type fault =
  | Trap of trap
  | Fuel_exhausted
  | Pool_exhausted
  | Instance_dead

exception Fault of fault

let fault_name = function
  | Trap k -> "trap:" ^ X.trap_name k
  | Fuel_exhausted -> "fuel-exhausted"
  | Pool_exhausted -> "pool-exhausted"
  | Instance_dead -> "instance-dead"

type allocator = Simple of { reservation : int } | Pool of Pool.layout

(* Fixed address-space plan (within the 47-bit user space):
   - tables at the codegen config addresses (~0x3000_0000);
   - per-instance host blocks (vmctx + host stack) from 1 GiB;
   - code at 8 GiB (the machine's default);
   - linear-memory slab from 32 GiB. *)
let host_area_base = 0x4000_0000
let host_block_stride = 0x10_0000 (* 1 MiB *)
let host_stack_offset = 0x1_0000
let host_stack_bytes = 0x4_0000 (* 256 KiB *)
let slab_base = 0x8_0000_0000
let hostcall_halt = 0xFFFF

let wasm_page = W.page_size

type engine = {
  machine : Machine.t;
  space : Space.t;
  compiled : Codegen.compiled;
  allocator : allocator;
  max_slots : int;
  mutable free_slots : int list;
  mutable next_slot : int;
  slot_mapped_pages : (int, int) Hashtbl.t; (* slot -> pages ever mapped *)
  imports : (string, instance -> int64 array -> int64) Hashtbl.t;
  mutable current : instance option;
  transition_overhead_cycles : int;
  mutable transitions : int;
  retry_capacity : int;
  waiters : int Queue.t; (* tickets waiting for a slot, FIFO *)
}

and instance = {
  engine : engine;
  id : int;
  vmctx : int;
  heap : int;
  stack_top : int;
  inst_color : int;
  mutable pages : int;
  max_pages : int;
  mutable live : bool;
}

let machine e = e.machine
let space e = e.space
let compiled e = e.compiled
let instance_id i = i.id
let heap_base i = i.heap
let color i = i.inst_color
let memory_pages i = i.pages

let ok_exn what = function Ok () -> () | Error msg -> failwith (what ^ ": " ^ msg)

let strategy e = e.compiled.Codegen.config.Codegen.strategy

(* --- vmctx accessors --- *)

let write_vmctx64 e inst off v = Space.write64 e.space (inst.vmctx + off) v

let set_memory_bound e inst =
  write_vmctx64 e inst Codegen.vmctx_memory_bytes (Int64.of_int (inst.pages * wasm_page))

(* --- memory growth --- *)

let slot_capacity_pages e =
  match e.allocator with
  | Simple { reservation } -> reservation / wasm_page
  | Pool layout -> layout.Pool.params.Pool.max_memory_bytes / wasm_page

let map_heap_range e inst ~from_page ~to_page =
  if to_page > from_page then begin
    let addr = inst.heap + (from_page * wasm_page) in
    let len = (to_page - from_page) * wasm_page in
    ok_exn "map heap" (Space.map e.space ~addr ~len ~prot:Prot.rw);
    if inst.inst_color <> 0 then
      ok_exn "color heap" (Space.pkey_protect e.space ~addr ~len ~prot:Prot.rw ~key:inst.inst_color)
  end

let set_accessible e inst ~pages =
  let mapped = try Hashtbl.find e.slot_mapped_pages inst.id with Not_found -> 0 in
  if pages > mapped then begin
    (* Make the already-mapped prefix accessible again, then extend. *)
    if mapped > 0 then
      ok_exn "reprotect heap"
        (Space.pkey_protect e.space ~addr:inst.heap ~len:(mapped * wasm_page) ~prot:Prot.rw
           ~key:inst.inst_color);
    map_heap_range e inst ~from_page:mapped ~to_page:pages;
    Hashtbl.replace e.slot_mapped_pages inst.id pages
  end
  else begin
    if pages > 0 then
      ok_exn "reprotect heap"
        (Space.pkey_protect e.space ~addr:inst.heap ~len:(pages * wasm_page) ~prot:Prot.rw
           ~key:inst.inst_color);
    if mapped > pages then
      ok_exn "fence heap"
        (Space.pkey_protect e.space
           ~addr:(inst.heap + (pages * wasm_page))
           ~len:((mapped - pages) * wasm_page)
           ~prot:Prot.none ~key:inst.inst_color)
  end

let grow_memory e inst delta =
  if delta < 0 then -1
  else if delta = 0 then inst.pages
  else begin
    let new_pages = inst.pages + delta in
    if new_pages > inst.max_pages || new_pages > slot_capacity_pages e then -1
    else begin
      let old = inst.pages in
      set_accessible e inst ~pages:new_pages;
      inst.pages <- new_pages;
      set_memory_bound e inst;
      old
    end
  end

(* --- hostcalls --- *)

let hostcall_handler e m id =
  let inst =
    match e.current with Some i -> i | None -> failwith "hostcall outside an invocation"
  in
  if id = hostcall_halt then raise (Machine.Hostcall_exit 0)
  else if id = Codegen.hostcall_memory_grow then begin
    let delta = Int64.to_int (Machine.get_reg m X.RDI) in
    Machine.set_reg m X.RAX (Int64.of_int (grow_memory e inst delta))
  end
  else begin
    let imports = e.compiled.Codegen.source.W.imports in
    if id < 0 || id >= Array.length imports then failwith "unknown hostcall id";
    let { W.iname; itype } = imports.(id) in
    let ft = e.compiled.Codegen.source.W.types.(itype) in
    let nargs = List.length ft.W.params in
    let args =
      Array.init nargs (fun k ->
          Machine.get_reg m (match k with 0 -> X.RDI | 1 -> X.RSI | _ -> X.RDX))
    in
    match Hashtbl.find_opt e.imports iname with
    | Some f ->
        (* A hostcall is a transition pair: out of and back into the
           sandbox. Under ColorGuard each direction pays a pkru switch. *)
        e.transitions <- e.transitions + 2;
        if e.compiled.Codegen.config.Codegen.colorguard then begin
          let c = Machine.counters m in
          c.Machine.cycles <- c.Machine.cycles + (2 * (Machine.cost_model m).Cost.wrpkru_cycles)
        end;
        let result = f inst args in
        Machine.set_reg m X.RAX result
    | None -> failwith ("unresolved import: " ^ iname)
  end

(* --- engine creation --- *)

let create_engine ?cost ?tlb ?(fsgsbase_available = true) ?max_map_count
    ?(allocator = Simple { reservation = 4 * Sfi_util.Units.gib })
    ?(transition_overhead_cycles = 55) ?(retry_queue_capacity = 64) ?code_base ?engine
    (compiled : Codegen.compiled) =
  let space = Space.create ?max_map_count () in
  let machine = Machine.create ?cost ?tlb ~fsgsbase_available ?code_base space in
  (match engine with Some k -> Machine.set_engine machine k | None -> ());
  Machine.load_program machine compiled.Codegen.program;
  (* Indirect-call tables: code addresses and type ids, host memory. *)
  let cfg = compiled.Codegen.config in
  let table_len = Array.length compiled.Codegen.table_entries in
  let table_area = Sfi_util.Units.align_up (max 4096 (8 * table_len)) 4096 in
  ok_exn "map table"
    (Space.map space ~addr:cfg.Codegen.table_base ~len:table_area ~prot:Prot.r);
  ok_exn "map table types"
    (Space.map space ~addr:cfg.Codegen.table_types_base ~len:table_area ~prot:Prot.r);
  Array.iteri
    (fun i (label, tyid) ->
      Space.write64 space
        (cfg.Codegen.table_base + (8 * i))
        (Int64.of_int (Machine.label_address machine label));
      Space.write32 space (cfg.Codegen.table_types_base + (4 * i)) (Int32.of_int tyid))
    compiled.Codegen.table_entries;
  let max_slots =
    match allocator with
    | Simple _ -> 4096
    | Pool layout -> layout.Pool.params.Pool.num_slots
  in
  let e =
    {
      machine;
      space;
      compiled;
      allocator;
      max_slots;
      free_slots = [];
      next_slot = 0;
      slot_mapped_pages = Hashtbl.create 64;
      imports = Hashtbl.create 8;
      current = None;
      transition_overhead_cycles;
      transitions = 0;
      retry_capacity = retry_queue_capacity;
      waiters = Queue.create ();
    }
  in
  Machine.set_hostcall_handler machine (fun m id -> hostcall_handler e m id);
  e

let register_import e name f = Hashtbl.replace e.imports name f

(* --- instances --- *)

let slot_heap_base e slot =
  match e.allocator with
  | Simple { reservation } ->
      (* Keep a 4 GiB guard window after each reservation. *)
      slab_base + (slot * (reservation + (4 * Sfi_util.Units.gib)))
  | Pool layout -> slab_base + Pool.slot_base layout slot

let slot_color e slot =
  match e.allocator with Simple _ -> 0 | Pool layout -> Pool.color_of_slot layout slot

let claim_slot e =
  match e.free_slots with
  | s :: rest ->
      e.free_slots <- rest;
      Some s
  | [] ->
      if e.next_slot >= e.max_slots then None
      else begin
        let s = e.next_slot in
        e.next_slot <- s + 1;
        Some s
      end

let instantiate_slot e slot =
  let m = e.compiled.Codegen.source in
  let min_pages, max_pages =
    match m.W.memory with
    | Some { W.min_pages; max_pages } ->
        (min_pages, match max_pages with Some mx -> mx | None -> 65536)
    | None -> (0, 0)
  in
  let host_block = host_area_base + (slot * host_block_stride) in
  let inst =
    {
      engine = e;
      id = slot;
      vmctx = host_block;
      heap = slot_heap_base e slot;
      stack_top = host_block + host_stack_offset + host_stack_bytes;
      inst_color = slot_color e slot;
      pages = min_pages;
      max_pages = min max_pages (slot_capacity_pages e);
      live = true;
    }
  in
  (* Host block: vmctx page + host stack (default pkey 0). First use of the
     slot maps it; recycled slots keep their mapping. *)
  if not (Hashtbl.mem e.slot_mapped_pages slot) then begin
    ok_exn "map vmctx" (Space.map e.space ~addr:host_block ~len:4096 ~prot:Prot.rw);
    ok_exn "map stack"
      (Space.map e.space ~addr:(host_block + host_stack_offset) ~len:host_stack_bytes
         ~prot:Prot.rw);
    Hashtbl.replace e.slot_mapped_pages slot 0
  end;
  set_accessible e inst ~pages:min_pages;
  (* Zero recycled memory the way Wasmtime does. *)
  if min_pages > 0 then
    ok_exn "madvise heap"
      (Space.madvise_dontneed e.space ~addr:inst.heap ~len:(min_pages * wasm_page));
  (* vmctx: bound, heap base, pkru images, globals. *)
  set_memory_bound e inst;
  write_vmctx64 e inst Codegen.vmctx_heap_base (Int64.of_int inst.heap);
  let sandbox_pkru =
    if inst.inst_color = 0 then Mpk.allow_all
    else Mpk.allow_only [ Mpk.default_key; inst.inst_color ]
  in
  write_vmctx64 e inst Codegen.vmctx_pkru_sandbox (Int64.of_int sandbox_pkru);
  write_vmctx64 e inst Codegen.vmctx_pkru_host (Int64.of_int Mpk.allow_all);
  (* Stack exhaustion limit: leave a page of headroom above the guard. *)
  write_vmctx64 e inst Codegen.vmctx_stack_limit
    (Int64.of_int (host_block + host_stack_offset + 4096));
  Array.iteri
    (fun i (g : W.global) ->
      let bits =
        match g.W.ginit with
        | W.V_i32 v -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
        | W.V_i64 v -> v
      in
      write_vmctx64 e inst (Codegen.vmctx_globals + (8 * i)) bits)
    m.W.globals;
  List.iter
    (fun { W.doffset; dbytes } ->
      Space.write_bytes e.space ~addr:(inst.heap + doffset) (Bytes.of_string dbytes))
    m.W.data;
  inst

let try_instantiate e =
  match claim_slot e with
  | None -> Error Pool_exhausted
  | Some slot -> Ok (instantiate_slot e slot)

let instantiate e =
  match try_instantiate e with Ok inst -> inst | Error f -> raise (Fault f)

let queue_contains q ticket = Queue.fold (fun acc t -> acc || t = ticket) false q

let instantiate_queued e ~ticket =
  (* Only the queue head (or a newcomer arriving at an empty queue) may
     claim a slot; everyone else keeps their FIFO position. *)
  let queued = queue_contains e.waiters ticket in
  let is_head = Queue.peek_opt e.waiters = Some ticket in
  if is_head || ((not queued) && Queue.is_empty e.waiters) then
    match try_instantiate e with
    | Ok inst ->
        if is_head then ignore (Queue.pop e.waiters);
        `Ready inst
    | Error Pool_exhausted ->
        if queued then `Wait
        else if Queue.length e.waiters >= e.retry_capacity then `Rejected
        else begin
          Queue.push ticket e.waiters;
          `Wait
        end
    | Error f -> raise (Fault f)
  else if queued then `Wait
  else if Queue.length e.waiters >= e.retry_capacity then `Rejected
  else begin
    Queue.push ticket e.waiters;
    `Wait
  end

let waiting e = Queue.length e.waiters

let release inst =
  let e = inst.engine in
  if inst.live then begin
    inst.live <- false;
    if inst.pages > 0 then
      ok_exn "madvise release"
        (Space.madvise_dontneed e.space ~addr:inst.heap ~len:(inst.pages * wasm_page));
    (match e.current with Some i when i == inst -> e.current <- None | _ -> ());
    e.free_slots <- inst.id :: e.free_slots
  end

let kill inst =
  let e = inst.engine in
  if inst.live then begin
    inst.live <- false;
    (* Drop page contents first, then fence everything the slot ever mapped
       to PROT_NONE so a stale activation faults instead of reading the next
       tenant's memory. A fresh [instantiate] of the slot re-opens it. *)
    if inst.pages > 0 then
      ok_exn "madvise kill"
        (Space.madvise_dontneed e.space ~addr:inst.heap ~len:(inst.pages * wasm_page));
    set_accessible e inst ~pages:0;
    (match e.current with Some i when i == inst -> e.current <- None | _ -> ());
    e.free_slots <- inst.id :: e.free_slots
  end

let live inst = inst.live

let read_memory inst ~addr ~len =
  Bytes.to_string (Space.read_bytes inst.engine.space ~addr:(inst.heap + addr) ~len)

let write_memory inst ~addr s =
  Space.write_bytes inst.engine.space ~addr:(inst.heap + addr) (Bytes.of_string s)

(* --- transitions and calls --- *)

let charge_transition e =
  e.transitions <- e.transitions + 1;
  let c = Machine.counters e.machine in
  c.Machine.cycles <- c.Machine.cycles + e.transition_overhead_cycles

let charge_exit e =
  charge_transition e;
  if e.compiled.Codegen.config.Codegen.colorguard then begin
    (* Restore the host PKRU on the way out: the second wrpkru. *)
    Machine.set_pkru e.machine Mpk.allow_all;
    let c = Machine.counters e.machine in
    c.Machine.cycles <- c.Machine.cycles + (Machine.cost_model e.machine).Cost.wrpkru_cycles
  end

let prepare_call inst name args =
  let e = inst.engine in
  let m = e.machine in
  e.current <- Some inst;
  Machine.set_seg_base m X.FS inst.vmctx;
  (* The native baseline's "absolute pointers": the base is implicit. *)
  if (strategy e).Strategy.addressing = Strategy.Direct then
    Machine.set_seg_base m X.GS inst.heap;
  (* Fail-closed PKRU: under ColorGuard, enter the call with the sandbox
     image already installed (the entry-sequence [wrpkru] then re-writes the
     same value). A mutant that skips the entry [wrpkru] therefore runs
     restricted rather than with the host's all-access rights — modeling a
     trampoline that switches PKRU before jumping to untrusted code. The
     host stack and vmctx stay reachable (key 0). *)
  let entry_pkru =
    if e.compiled.Codegen.config.Codegen.colorguard && inst.inst_color <> 0 then
      Mpk.allow_only [ Mpk.default_key; inst.inst_color ]
    else Mpk.allow_all
  in
  Machine.set_pkru m entry_pkru;
  (* Caller-side argument pushes. *)
  let rsp = ref inst.stack_top in
  List.iter
    (fun a ->
      rsp := !rsp - 8;
      Space.write64 e.space !rsp a)
    args;
  Machine.set_reg m X.RSP (Int64.of_int !rsp);
  charge_transition e;
  Machine.start m ~entry:(Codegen.entry_label e.compiled name)

let finish e status =
  match status with
  | Machine.Halted ->
      charge_exit e;
      `Done (Machine.get_reg e.machine X.RAX)
  | Machine.Trapped k ->
      charge_exit e;
      `Trapped k
  | Machine.Yielded -> `More

let invoke ?(fuel = 1 lsl 30) inst name args =
  if not inst.live then raise (Fault Instance_dead);
  prepare_call inst name args;
  match finish inst.engine (Machine.run inst.engine.machine ~fuel) with
  | `Done v -> Ok v
  | `Trapped k -> Error k
  | `More -> raise (Fault Fuel_exhausted)

let invoke_protected ?(fuel = 1 lsl 30) inst name args =
  if not inst.live then Error Instance_dead
  else begin
    prepare_call inst name args;
    match finish inst.engine (Machine.run inst.engine.machine ~fuel) with
    | `Done v -> Ok v
    | `Trapped k ->
        kill inst;
        Error (Trap k)
    | `More ->
        kill inst;
        Error Fuel_exhausted
  end

type activation = {
  act_inst : instance;
  mutable ctx : Machine.context option;
  mutable done_ : bool;
  deadline : int option; (* fuel budget across the whole activation *)
  mutable spent : int; (* fuel consumed so far *)
}

let start_call ?deadline_fuel inst name args =
  if not inst.live then raise (Fault Instance_dead);
  prepare_call inst name args;
  let ctx = Machine.save_context inst.engine.machine in
  { act_inst = inst; ctx = Some ctx; done_ = false; deadline = deadline_fuel; spent = 0 }

let step act ~fuel =
  if act.done_ then invalid_arg "Runtime.step: activation already finished";
  if not act.act_inst.live then begin
    act.done_ <- true;
    `Fault Instance_dead
  end
  else begin
    let e = act.act_inst.engine in
    let m = e.machine in
    (match act.ctx with Some c -> Machine.restore_context m c | None -> ());
    e.current <- Some act.act_inst;
    match finish e (Machine.run m ~fuel) with
    | `Done v ->
        act.done_ <- true;
        `Done v
    | `Trapped k ->
        act.done_ <- true;
        kill act.act_inst;
        `Trapped k
    | `More -> (
        act.ctx <- Some (Machine.save_context m);
        act.spent <- act.spent + fuel;
        (* Watchdog: a runaway activation that overruns its epoch deadline
           is killed rather than rescheduled forever. *)
        match act.deadline with
        | Some limit when act.spent >= limit ->
            act.done_ <- true;
            kill act.act_inst;
            `Fault Fuel_exhausted
        | _ -> `More)
  end

let last_fault_info e = Machine.last_fault_info e.machine

let attribute_address e addr =
  if addr < slab_base then `Host
  else begin
    let stride, accessible, pre =
      match e.allocator with
      | Simple { reservation } -> (reservation + (4 * Sfi_util.Units.gib), reservation, 0)
      | Pool layout ->
          ( layout.Pool.slot_bytes,
            layout.Pool.params.Pool.max_memory_bytes,
            layout.Pool.pre_slot_guard_bytes )
    in
    let off = addr - slab_base - pre in
    if off < 0 then `Guard 0
    else begin
      let slot = off / stride in
      if slot >= e.max_slots then `Guard (e.max_slots - 1)
      else if off mod stride < accessible then `Slot slot
      else `Guard slot
    end
  end

(* --- SFI sanitizer ---

   A shadow policy installed into the machine's sanitizer hook: every data
   access that the hardware accepted must land inside the current
   instance's own regions (its heap slot up to the current memory bound,
   its vmctx page, its host stack, the shared indirect-call tables), and
   under ColorGuard the PKRU in force must be exactly the sandbox's own
   image. Every indirect branch target must resolve inside the code
   region. Violations surface as {!Sanitizer_violation} raised at the
   faulting instruction — strictly stronger than the architectural checks,
   which happily let a sandbox touch a neighbour's mapped pages. *)

type violation = {
  v_kind : [ `Read | `Write | `Branch ];
  v_addr : int;
  v_len : int;
  v_pc : int;
  v_instr : string;
  v_instr_count : int;
  v_attribution : [ `Slot of int | `Guard of int | `Host ];
  v_detail : string;
}

exception Sanitizer_violation of violation

let kind_name = function `Read -> "read" | `Write -> "write" | `Branch -> "branch"

let attribution_name = function
  | `Slot n -> Printf.sprintf "slot %d" n
  | `Guard n -> Printf.sprintf "guard after slot %d" n
  | `Host -> "host memory"

let pp_violation ppf v =
  Format.fprintf ppf
    "sanitizer: out-of-sandbox %s of %d byte(s) at 0x%x (%s) — instruction #%d `%s` (pc %d): %s"
    (kind_name v.v_kind) v.v_len v.v_addr (attribution_name v.v_attribution) v.v_instr_count
    v.v_instr v.v_pc v.v_detail

let table_area_bytes e =
  Sfi_util.Units.align_up (max 4096 (8 * Array.length e.compiled.Codegen.table_entries)) 4096

let violation e m ~kind ~addr ~len ~detail =
  let pc = Machine.pc m in
  let instr =
    match Machine.instr_at m pc with
    | Some i -> Format.asprintf "%a" Sfi_x86.Ast.pp_instr i
    | None -> "<no instruction>"
  in
  Sanitizer_violation
    {
      v_kind = kind;
      v_addr = addr;
      v_len = len;
      v_pc = pc;
      v_instr = instr;
      v_instr_count = (Machine.counters m).Machine.instructions;
      v_attribution = attribute_address e addr;
      v_detail = detail;
    }

let arm_sanitizer e =
  let cfg = e.compiled.Codegen.config in
  let tables = table_area_bytes e in
  Machine.set_sanitizer e.machine
    (Some
       (fun m ~kind ~addr ~len ->
         match e.current with
         | None -> () (* host-side use of the machine, not sandboxed code *)
         | Some inst -> (
             match kind with
             | Machine.San_branch ->
                 let base, code_len = Machine.code_bounds m in
                 if not (addr >= base && addr < base + code_len) then
                   raise
                     (violation e m ~kind:`Branch ~addr ~len:0
                        ~detail:"indirect branch target outside the code region")
             | Machine.San_read | Machine.San_write ->
                 let kind' = if kind = Machine.San_write then `Write else `Read in
                 let lo = addr and hi = addr + max 1 len in
                 let within a b = lo >= a && hi <= b in
                 let in_regions =
                   within inst.heap (inst.heap + (inst.pages * wasm_page))
                   || within inst.vmctx (inst.vmctx + 4096)
                   || within (inst.vmctx + host_stack_offset) inst.stack_top
                   || within cfg.Codegen.table_base (cfg.Codegen.table_base + tables)
                   || within cfg.Codegen.table_types_base
                        (cfg.Codegen.table_types_base + tables)
                 in
                 if not in_regions then
                   raise
                     (violation e m ~kind:kind' ~addr ~len
                        ~detail:
                          (Printf.sprintf
                             "outside the sandbox's slot bounds (heap 0x%x + %d pages)"
                             inst.heap inst.pages));
                 if cfg.Codegen.colorguard && inst.inst_color <> 0 then begin
                   let expected = Mpk.allow_only [ Mpk.default_key; inst.inst_color ] in
                   if Machine.get_pkru m <> expected then
                     raise
                       (violation e m ~kind:kind' ~addr ~len
                          ~detail:
                            (Printf.sprintf
                               "PKRU 0x%x in force instead of the sandbox image 0x%x (color %d)"
                               (Machine.get_pkru m) expected inst.inst_color))
                 end)))

let disarm_sanitizer e = Machine.set_sanitizer e.machine None

(* --- debugging accessors used by the fuzz harness --- *)

let read_global inst i =
  Space.read64 inst.engine.space (inst.vmctx + Codegen.vmctx_globals + (8 * i))

let vmctx_addr inst = inst.vmctx

let transitions e = e.transitions
let elapsed_ns e = Machine.elapsed_ns e.machine

let reset_metrics e =
  Machine.reset_counters e.machine;
  e.transitions <- 0
