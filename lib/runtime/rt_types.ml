(* Shared state of the runtime's layers. The engine/instance records are
   mutually recursive, so they live here and the layers split along
   behavior instead: {!Instance} owns the slot lifecycle (claim, CoW
   instantiate, recycle, kill, growth), {!Transition} owns the
   sandbox-boundary cost model (per-class springboards, PKRU accounting),
   and {!Runtime} is the façade that callers see. The library is wrapped,
   so none of this leaks past [Sfi_runtime.Runtime]. *)

module X = Sfi_x86.Ast
module W = Sfi_wasm.Ast
module Space = Sfi_vmem.Space
module Machine = Sfi_machine.Machine
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool

type trap = X.trap_kind

type fault =
  | Trap of trap
  | Fuel_exhausted
  | Pool_exhausted
  | Instance_dead

exception Fault of fault

let fault_name = function
  | Trap k -> "trap:" ^ X.trap_name k
  | Fuel_exhausted -> "fuel-exhausted"
  | Pool_exhausted -> "pool-exhausted"
  | Instance_dead -> "instance-dead"

type allocator = Simple of { reservation : int } | Pool of Pool.layout

(* Kolosick et al. (Isolation Without Taxation): most transitions need
   almost none of the save/restore work a full springboard performs.
   Classified at import registration:
   - [Pure]: no memory access, no stack switch, no PKRU write — a direct
     call through a minimal springboard;
   - [Readonly]: runs on the sandbox stack under the sandbox's own PKRU
     image (key 0 keeps the host block reachable), so both [wrpkru]s are
     elided;
   - [Full]: the general case — stack switch, exception-handler setup, and
     under ColorGuard a PKRU write each way. *)
type hostcall_class = Pure | Readonly | Full

(* Fixed address-space plan (within the 47-bit user space):
   - tables at the codegen config addresses (~0x3000_0000);
   - per-instance host blocks (vmctx + host stack) from 1 GiB;
   - code at 8 GiB (the machine's default);
   - linear-memory slab from 32 GiB. *)
let host_area_base = 0x4000_0000
let host_block_stride = 0x10_0000 (* 1 MiB *)
let host_stack_offset = 0x1_0000
let host_stack_bytes = 0x4_0000 (* 256 KiB *)
let host_block_len = host_stack_offset + host_stack_bytes
let slab_base = 0x8_0000_0000
let hostcall_halt = 0xFFFF

let wasm_page = W.page_size

(* Lifecycle and transition counters, all monotonic until [reset_metrics]. *)
type counters = {
  mutable transitions : int; (* one-way sandbox crossings *)
  mutable calls_pure : int;
  mutable calls_readonly : int;
  mutable calls_full : int;
  mutable pkru_writes_elided : int;
  mutable pages_zeroed_on_recycle : int;
  mutable instantiations_cold : int; (* first use of a slot *)
  mutable instantiations_warm : int; (* recycled slot reuse *)
  mutable admitted : int; (* slot grants through the admission path *)
  mutable adm_queued : int; (* tickets parked by the admission controller *)
  mutable adm_shed_sojourn : int; (* CoDel / ticket-deadline sheds *)
  mutable adm_shed_rate : int; (* per-tenant token-bucket sheds *)
  mutable adm_shed_capacity : int; (* queue-at-capacity sheds *)
}

let fresh_counters () =
  {
    transitions = 0;
    calls_pure = 0;
    calls_readonly = 0;
    calls_full = 0;
    pkru_writes_elided = 0;
    pages_zeroed_on_recycle = 0;
    instantiations_cold = 0;
    instantiations_warm = 0;
    admitted = 0;
    adm_queued = 0;
    adm_shed_sojourn = 0;
    adm_shed_rate = 0;
    adm_shed_capacity = 0;
  }

let reset_counters c =
  c.transitions <- 0;
  c.calls_pure <- 0;
  c.calls_readonly <- 0;
  c.calls_full <- 0;
  c.pkru_writes_elided <- 0;
  c.pages_zeroed_on_recycle <- 0;
  c.instantiations_cold <- 0;
  c.instantiations_warm <- 0;
  c.admitted <- 0;
  c.adm_queued <- 0;
  c.adm_shed_sojourn <- 0;
  c.adm_shed_rate <- 0;
  c.adm_shed_capacity <- 0

(* Domain-local aggregate of the same counters across every engine created
   on the calling domain. Engines are often created, exercised and dropped
   inside a single workload run (e.g. {!Sfi_workloads.Kernel.run}), so a
   harness that only sees the run's result can still report
   transition/lifecycle totals. Every per-engine counter bump mirrors into
   this record. *)
let domain_counters_key = Domain.DLS.new_key fresh_counters
let domain_counters () = Domain.DLS.get domain_counters_key

(* CoDel-style adaptive admission over the slot pool: a per-ticket sojourn
   deadline, a target-delay controller applied at dequeue (so the load shed
   is the load that waited longest, never random arrivals), and a
   token-bucket rate limiter per tenant. Armed via {!Runtime.set_admission};
   when absent, {!Runtime.admit} falls back to the blind bounded-FIFO retry
   queue of {!Runtime.instantiate_queued}. Time is the caller's simulated
   clock, passed on every call. *)
type admission_config = {
  target_delay_ns : float; (* CoDel target sojourn *)
  interval_ns : float; (* how long sojourn must exceed target before shedding *)
  ticket_deadline_ns : float; (* hard per-ticket sojourn bound *)
  tenant_rate : float; (* bucket refill, tokens per simulated second *)
  tenant_burst : float; (* bucket capacity, >= 1 *)
}

type token_bucket = { mutable tokens : float; mutable refilled_at : float }

type admission_state = {
  acfg : admission_config;
  aqueue : (int * float) Queue.t; (* (ticket, enqueued-at); stale heads skipped lazily *)
  amember : (int, float) Hashtbl.t; (* parked tickets -> enqueue time *)
  buckets : (int, token_bucket) Hashtbl.t; (* tenant -> rate-limit state *)
  mutable first_above : float; (* CoDel: when shedding may start; < 0 = below target *)
  mutable shed_run : int; (* consecutive CoDel sheds (control-law count) *)
  mutable pressure : float; (* ladder scale on target/deadline; 1.0 = normal *)
}

type engine = {
  machine : Machine.t;
  space : Space.t;
  compiled : Codegen.compiled;
  allocator : allocator;
  max_slots : int;
  mutable free_slots : int list;
  mutable next_slot : int;
  slot_mapped_pages : (int, int) Hashtbl.t; (* slot -> pages ever mapped *)
  imports : (string, import) Hashtbl.t;
  mutable current : instance option;
  transition_overhead_cycles : int;
  pure_springboard_cycles : int;
  readonly_springboard_cycles : int;
  counters : counters;
  retry_capacity : int;
  waiters : int Queue.t; (* tickets waiting for a slot, FIFO *)
  waiter_set : (int, unit) Hashtbl.t; (* same tickets, O(1) membership *)
  mutable admission : admission_state option; (* None = blind FIFO retry queue *)
  mutable slot_reserve : int; (* slots withheld from allocation (ladder) *)
  (* Pre-initialized module image, baked once at engine creation: data
     segments for the heap, the per-module vmctx template (memory bound,
     host PKRU image, global initial values). Every slot instantiates by
     mapping these copy-on-write. *)
  heap_image : Space.image;
  vmctx_image : Space.image;
  min_pages : int; (* the module's declared initial memory *)
  decl_max_pages : int; (* the module's declared maximum *)
  (* Structured-event sink shared with the machine; [Trace.null] by
     default. Transition spans, hostcall classes, lifecycle and fault
     events are emitted here. *)
  mutable trace : Sfi_trace.Trace.t;
}

and instance = {
  engine : engine;
  id : int;
  vmctx : int;
  heap : int;
  stack_top : int;
  inst_color : int;
  mutable pages : int;
  max_pages : int;
  mutable live : bool;
}

and import = { im_fn : instance -> int64 array -> int64; im_class : hostcall_class }

let ok_exn what = function Ok () -> () | Error msg -> failwith (what ^ ": " ^ msg)
