(** Low-overhead structured tracing for the simulated SFI stack.

    A {!t} is an event sink. The default sink, {!null}, is permanently
    disabled: every emitter is a single load-and-branch, so instrumented
    code pays nothing when tracing is off. {!create_ring} builds an
    enabled sink backed by preallocated integer arrays — emitting an
    event is a handful of array stores and never allocates. When the
    ring fills up the earliest events are kept and later ones are
    counted in {!dropped}, so span nesting of the captured prefix stays
    well-formed.

    Timestamps come from a settable {e clock} closure returning
    monotonic simulated nanoseconds. The machine installs a clock
    derived from its cycle counter; the FaaS simulator installs its own
    global clock for request spans. Tracks identify sandboxes (or
    tenants): track [-1] is the machine itself, tracks [>= 0] are
    sandbox slot ids.

    The event vocabulary is fixed (see the emitters below):
    transition spans and hostcall classes, instance lifecycle,
    faults with address attribution, pkru writes, TLB fill/evict, fuel
    checkpoints, FaaS request spans, admission decisions
    (admit/queue/shed with sojourn time), circuit-breaker transitions,
    and degradation-ladder steps. Exports: Chrome
    [trace_event] JSON loadable in Perfetto ({!to_chrome_json}),
    span-latency percentiles ({!summaries}), and Prometheus-style text
    exposition ({!prometheus}). *)

type t
(** An event sink: either the disabled {!null} sink or a ring buffer. *)

val null : t
(** The disabled sink. Emitting into it is a no-op; [enabled null] is
    [false]. This is the default everywhere tracing can be attached. *)

val create_ring : ?capacity:int -> unit -> t
(** A fresh enabled ring sink. [capacity] (default [65536]) bounds the
    number of retained events; all storage is allocated up front. *)

val create_tail_ring : ?capacity:int -> unit -> t
(** A keep-last ring: once full, each new event overwrites the oldest
    one (still counted in {!dropped}), so the sink always holds the most
    recent [capacity] (default [256]) events. This is the flight
    recorder's backing store; inspection and export see events in
    logical oldest-to-newest order regardless of where the wrap landed. *)

val set_tee : t -> t option -> unit
(** [set_tee t (Some r)] forwards every event stored into [t] to [r] as
    well, stamped with the same timestamp, so a keep-last tail ring can
    shadow a primary keep-first ring (the flight recorder still sees
    events after the primary fills up and starts dropping). A no-op on
    the disabled sink. [set_tee t None] detaches. *)

val enabled : t -> bool
(** [true] iff events emitted into this sink are recorded. Hot paths
    check this before computing event arguments. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the simulated-time source (monotonic nanoseconds). Events
    emitted before any [set_clock] are stamped [0]. *)

val now : t -> int
(** Current reading of the sink's clock. *)

val clear : t -> unit
(** Drop all recorded events (and the dropped-event count). *)

val length : t -> int
(** Number of retained events. *)

val capacity : t -> int
(** Ring capacity ([0] for {!null}). *)

val dropped : t -> int
(** Events discarded because the ring was full. *)

(** {1 Emitters}

    All emitters are no-ops on a disabled sink. Timestamps are read
    from the sink clock at emission time. *)

val call_begin : t -> sandbox:int -> unit
(** Transition span open: control enters sandbox [sandbox]. *)

val call_end : t -> sandbox:int -> unit
(** Transition span close: control returns to the host. *)

val hostcall : t -> sandbox:int -> cls:int -> cycles:int -> unit
(** A hostcall transition of class [cls] ([0] pure, [1] read-only,
    [2] full) that cost [cycles] machine cycles. *)

val instantiate : t -> sandbox:int -> warm:bool -> unit
(** Lifecycle: slot [sandbox] was instantiated (cold or warm). *)

val recycle : t -> sandbox:int -> pages:int -> unit
(** Lifecycle: slot [sandbox] was released and recycled; [pages] dirty
    pages were scrubbed. *)

val kill : t -> sandbox:int -> unit
(** Lifecycle: slot [sandbox] was killed after a fault. *)

val fault : t -> sandbox:int -> addr:int -> write:bool -> unit
(** A containment fault attributed to [sandbox]. [addr] is the faulting
    address ([-1] when the trap carries no address, e.g. fuel
    exhaustion); [write] distinguishes store from load faults. *)

val pkru_write : t -> value:int -> unit
(** The machine executed [wrpkru] with [value]. Machine track. *)

val tlb_fill : t -> page:int -> unit
(** The simulated dTLB filled a slot with [page]. Machine track. *)

val tlb_evict : t -> page:int -> unit
(** The fill displaced valid entry [page]. Machine track. *)

val fuel_checkpoint : t -> sandbox:int -> executed:int -> unit
(** An activation yielded at an epoch boundary with [executed]
    instructions retired so far. *)

val request_begin : t -> tenant:int -> unit
(** FaaS: tenant [tenant]'s request entered service. *)

val request_end : t -> tenant:int -> ok:bool -> unit
(** FaaS: the request completed ([ok]) or failed. *)

val admission_admit : t -> tenant:int -> sojourn:int -> unit
(** Admission: tenant [tenant]'s ticket was granted a slot after waiting
    [sojourn] simulated nanoseconds in the admission queue (0 for an
    uncontended grant). *)

val admission_queue : t -> tenant:int -> depth:int -> unit
(** Admission: the ticket was parked; [depth] is the queue length after
    enqueueing. *)

val admission_shed : t -> tenant:int -> sojourn:int -> reason:int -> unit
(** Admission: the ticket was shed. [sojourn] is how long it had waited;
    [reason] is [0] sojourn-deadline (CoDel), [1] tenant rate limit,
    [2] queue at capacity, [3] priority shed by the degradation ladder. *)

val breaker_open : t -> tenant:int -> backoff:int -> unit
(** Circuit breaker: tenant [tenant]'s breaker tripped open; the next
    probe is allowed after [backoff] simulated nanoseconds. *)

val breaker_half_open : t -> tenant:int -> unit
(** Circuit breaker: the backoff elapsed; one probe request is allowed. *)

val breaker_close : t -> tenant:int -> unit
(** Circuit breaker: the probe succeeded; the tenant is healthy again. *)

val degrade_step : t -> level:int -> unit
(** The graceful-degradation ladder moved to [level] ([0] = normal
    service). Machine track. *)

val tier_promote : t -> cls:int -> block:int -> len:int -> unit
(** The execution engine promoted the basic block headed at instruction
    index [block] ([len] dispatch slots) to a superblock. [cls] is the
    block's class rank — [0] pure-compute ([tier.promote.pure]), [1]
    no-store-no-branch ([tier.promote.load]), [2] hazardous
    ([tier.promote.hazard]). Machine track. *)

val slo_burn_start : t -> tenant:int -> burn_milli:int -> window:int -> unit
(** SLO: tenant [tenant]'s error-budget burn rate crossed its alerting
    threshold. [burn_milli] is the burn rate in thousandths (burn x
    1000, truncated); [window] is [0] for the fast window, [1] for the
    slow one. *)

val slo_burn_stop : t -> tenant:int -> burn_milli:int -> window:int -> unit
(** SLO: the burn-rate alert for [tenant] cleared. Arguments as for
    {!slo_burn_start}. *)

(** {1 Inspection} *)

type event = {
  ev_ts : int;  (** simulated nanoseconds *)
  ev_cat : string;
      (** one of ["transition"], ["lifecycle"], ["fault"], ["pkru"],
          ["tlb"], ["fuel"], ["request"], ["admission"], ["breaker"],
          ["tier"] *)
  ev_name : string;  (** e.g. ["call"], ["hostcall.pure"], ["tlb.fill"] *)
  ev_phase : char;  (** ['B'] span begin, ['E'] span end, ['i'] instant *)
  ev_track : int;  (** [-1] machine, [>= 0] sandbox/tenant id *)
  ev_a0 : int;  (** first event argument (meaning depends on [ev_name]) *)
  ev_a1 : int;  (** second event argument *)
}

val events : t -> event list
(** Decoded retained events, in emission order. *)

val categories : t -> string list
(** Distinct categories present, sorted. *)

val validate : t -> (unit, string) result
(** Structural check of the retained stream: timestamps are
    non-decreasing per track, every span end matches the innermost open
    span begin of the same name on its track, no span nests inside an
    open span of the same name on its track (no event in the vocabulary
    legitimately self-nests, so such a duplicate means two shards'
    streams collided on one track id), and (when no events were dropped)
    every span is closed. *)

val fingerprint : t -> int64
(** Order-sensitive FNV-1a digest of the retained events (timestamps,
    codes, tracks, arguments, plus length and drop count). Two sinks
    with equal fingerprints hold bit-identical streams; used by the
    sharding determinism and 1-shard-identity tests. *)

val merge_shards : t list -> t
(** [merge_shards rings] merges per-shard ring sinks into one stream
    ordered by simulated time (ties broken toward the lower shard id,
    so the merge is deterministic). Track ids are namespaced per shard:
    with stride [w] = 1 + the widest sandbox track seen in any input,
    shard [s]'s sandbox track [v] becomes [s * w + v] and its machine
    track becomes [-(s + 1)] — without this, two shards' sandbox 0
    collide in the merged Perfetto export (rejected by {!validate}).
    Merging a single ring preserves tracks untouched and is
    bit-identical to its input (equal {!fingerprint}). Dropped-event
    counts are summed. The result is an inspection/export sink; its
    clock is the zero clock. Raises [Invalid_argument] on []. *)

(** {1 Aggregation} *)

type summary = {
  s_count : int;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_total : float;
}
(** Latency distribution of one event class. Units are simulated
    nanoseconds for spans and machine cycles for hostcall classes. *)

val summaries : t -> (string * summary) list
(** Per-class latency summaries: paired [call] / [request] span
    durations and per-class hostcall costs, keyed by event name,
    sorted by name. Distributions are accumulated into
    {!Sfi_util.Hist} log-bucketed histograms, so percentiles are
    bucket-quantized (within one bucket width of the exact sorted-array
    answer); [s_count] and [s_total] stay exact. *)

(** {1 Export} *)

val to_chrome_json : ?process_name:string -> t -> string
(** Render the retained events as Chrome [trace_event] JSON (the
    ["traceEvents"] array form understood by Perfetto and
    [chrome://tracing]). One thread per track — tid [0] is the machine
    track, tid [id + 1] is sandbox [id] — with thread-name metadata
    records. Timestamps are exported in microseconds. *)

(** Minimal self-contained JSON value, exposed so downstream tools (the
    bench perf-regression gate, test-side validators) can parse emitted
    documents without an external dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string
(** Raised by {!parse_json} with a description and byte offset. *)

val parse_json : string -> json
(** Parse a JSON document (objects, arrays, strings with the common
    escapes, numbers, literals). Raises {!Bad_json} on malformed
    input or trailing garbage. *)

type json_report = { json_events : int; json_cats : string list }
(** Result of {!validate_chrome_json}: number of non-metadata events
    and the distinct categories seen, sorted. *)

val validate_chrome_json : string -> (json_report, string) result
(** Parse a Chrome trace JSON document (self-contained minimal JSON
    parser) and check it against the event schema: a top-level
    ["traceEvents"] array whose elements carry [name]/[ph]/[pid]/[tid],
    a numeric [ts] and a known [cat] on every non-metadata event, and a
    phase in [B]/[E]/[i]/[M]. *)

val prometheus : (string * string * float) list -> string
(** [prometheus [(name, help, value); ...]] renders Prometheus text
    exposition format: a [# HELP] and [# TYPE ... gauge] line followed
    by the sample for each metric. HELP text is escaped per the format
    (backslash and newline). *)

val prometheus_labeled :
  (string * string * (string * string) list * float) list -> string
(** Like {!prometheus} with a label set per sample:
    [(name, help, [(label, value); ...], v)] renders
    [name{label="value",...} v]. Label values are escaped (backslash,
    double quote, newline). Samples sharing a metric name share one
    [# HELP]/[# TYPE] header, emitted at the first occurrence. *)
