type bundle = {
  b_reason : string;
  b_seq : int;
  b_at_ns : int;
  b_events : Trace.event list;
  b_dropped : int;
  b_counters : (string * float) list;
}

type t = {
  ring : Trace.t;
  mutable bundles : (string * bundle) list; (* latest bundle per reason *)
  mutable freezes : int;
}

let create ?(capacity = 256) () =
  { ring = Trace.create_tail_ring ~capacity (); bundles = []; freezes = 0 }

let tap fr primary =
  if Trace.enabled primary then begin
    Trace.set_tee primary (Some fr.ring);
    primary
  end
  else fr.ring

let freeze fr ~reason ~at_ns ~counters =
  let b =
    {
      b_reason = reason;
      b_seq = fr.freezes;
      b_at_ns = at_ns;
      b_events = Trace.events fr.ring;
      b_dropped = Trace.dropped fr.ring;
      b_counters = counters;
    }
  in
  fr.freezes <- fr.freezes + 1;
  fr.bundles <- (reason, b) :: List.remove_assoc reason fr.bundles

let freezes fr = fr.freezes

let bundles fr =
  List.map snd fr.bundles
  |> List.sort (fun a b -> compare b.b_seq a.b_seq)

let find fr reason = List.assoc_opt reason fr.bundles

let render b =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "post-mortem: %s (freeze #%d at t=%dns)\n" b.b_reason
       b.b_seq b.b_at_ns);
  Buffer.add_string buf
    (Printf.sprintf "  events captured: %d (%d scrolled out of the tail ring)\n"
       (List.length b.b_events) b.b_dropped);
  if b.b_counters <> [] then begin
    Buffer.add_string buf "  counters:\n";
    List.iter
      (fun (k, v) ->
        let rendered =
          if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%g" v
        in
        Buffer.add_string buf (Printf.sprintf "    %-32s %s\n" k rendered))
      b.b_counters
  end;
  if b.b_events <> [] then begin
    Buffer.add_string buf "  event tail (oldest first):\n";
    List.iter
      (fun (e : Trace.event) ->
        Buffer.add_string buf
          (Printf.sprintf "    %10d %c %-20s track=%d a0=%d a1=%d\n" e.Trace.ev_ts
             e.Trace.ev_phase e.Trace.ev_name e.Trace.ev_track e.Trace.ev_a0
             e.Trace.ev_a1))
      b.b_events
  end;
  Buffer.contents buf
