(* Structured tracing: a preallocated ring of integer-coded events.

   Events are stored column-wise in parallel int arrays so that emitting
   never allocates: the hot-path cost of an enabled sink is one clock
   call and five array stores. Event identity is a small packed code
   [(name_id lsl 2) lor phase]; the name/category tables below are the
   single source of truth for the vocabulary. *)

type t = {
  active : bool;
  cap : int;
  wrap : bool;
      (* false: keep-first (drops count overflow). true: keep-last tail
         ring — overflow overwrites the oldest event; [head] marks the
         logical start once wrapped. *)
  ts : int array;
  code : int array;
  track : int array;
  a0 : int array;
  a1 : int array;
  mutable len : int;
  mutable head : int;
  mutable dropped : int;
  mutable clock : unit -> int;
  mutable shard_stride : int;
      (* 0 = unsharded. A merged ring records the track-namespacing
         stride so exports can label track [s * stride + k] as shard
         [s], sandbox [k]. *)
  mutable tee : t option;
      (* Secondary sink (the flight recorder's tail ring). Events are
         forwarded after the primary store, with the same timestamp, so
         both sinks see one coherent stream. Checked only inside the
         [active] branch — the disabled-sink fast path is untouched. *)
}

(* Event vocabulary. Index = name id; the two tables must stay in sync. *)
let name_table =
  [|
    "call";
    "hostcall.pure";
    "hostcall.readonly";
    "hostcall.full";
    "instantiate.cold";
    "instantiate.warm";
    "recycle";
    "kill";
    "fault";
    "pkru.write";
    "tlb.fill";
    "tlb.evict";
    "fuel.checkpoint";
    "request";
    "admission.admit";
    "admission.queue";
    "admission.shed";
    "breaker.open";
    "breaker.half_open";
    "breaker.close";
    "degrade.step";
    "tier.promote.pure";
    "tier.promote.load";
    "tier.promote.hazard";
    "slo.burn_start";
    "slo.burn_stop";
  |]

let cat_table =
  [|
    "transition";
    "transition";
    "transition";
    "transition";
    "lifecycle";
    "lifecycle";
    "lifecycle";
    "lifecycle";
    "fault";
    "pkru";
    "tlb";
    "tlb";
    "fuel";
    "request";
    "admission";
    "admission";
    "admission";
    "breaker";
    "breaker";
    "breaker";
    "admission";
    "tier";
    "tier";
    "tier";
    "slo";
    "slo";
  |]

let ph_begin = 0
let ph_end = 1
let ph_instant = 2
let pack name ph = (name lsl 2) lor ph
let code_name c = c lsr 2
let code_phase c = c land 3
let zero_clock () = 0

let null =
  {
    active = false;
    cap = 0;
    wrap = false;
    ts = [||];
    code = [||];
    track = [||];
    a0 = [||];
    a1 = [||];
    len = 0;
    head = 0;
    dropped = 0;
    clock = zero_clock;
    shard_stride = 0;
    tee = None;
  }

let make_ring ~wrap capacity =
  if capacity <= 0 then invalid_arg "Trace.create_ring: capacity must be > 0";
  {
    active = true;
    cap = capacity;
    wrap;
    ts = Array.make capacity 0;
    code = Array.make capacity 0;
    track = Array.make capacity 0;
    a0 = Array.make capacity 0;
    a1 = Array.make capacity 0;
    len = 0;
    head = 0;
    dropped = 0;
    clock = zero_clock;
    shard_stride = 0;
    tee = None;
  }

let create_ring ?(capacity = 65536) () = make_ring ~wrap:false capacity
let create_tail_ring ?(capacity = 256) () = make_ring ~wrap:true capacity
let enabled t = t.active
let set_clock t f = t.clock <- f
let now t = t.clock ()
let set_tee t sink = if t.active then t.tee <- sink

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

let length t = t.len
let capacity t = t.cap
let dropped t = t.dropped

let[@inline] store t ts code track a0 a1 =
  if t.len < t.cap then begin
    (* [head] is nonzero only once a tail ring has wrapped, and then
       [len = cap], so an unfilled ring always appends at [len]. *)
    let i = t.len in
    t.ts.(i) <- ts;
    t.code.(i) <- code;
    t.track.(i) <- track;
    t.a0.(i) <- a0;
    t.a1.(i) <- a1;
    t.len <- t.len + 1
  end
  else if t.wrap then begin
    (* Tail ring: overwrite the oldest event in place and advance the
       logical start; overwritten events still count as dropped. *)
    let i = t.head in
    t.ts.(i) <- ts;
    t.code.(i) <- code;
    t.track.(i) <- track;
    t.a0.(i) <- a0;
    t.a1.(i) <- a1;
    t.head <- (if i + 1 = t.cap then 0 else i + 1);
    t.dropped <- t.dropped + 1
  end
  else t.dropped <- t.dropped + 1

let[@inline] emit t code track a0 a1 =
  if t.active then begin
    let ts = t.clock () in
    store t ts code track a0 a1;
    match t.tee with
    | Some r -> if r.active then store r ts code track a0 a1
    | None -> ()
  end

(* Readers below index events from 0 without wrap awareness; a wrapped
   tail ring is first linearized into a plain ring in logical (oldest
   to newest) order. Unwrapped rings pass through untouched, so the
   common case pays nothing. *)
let logical t =
  if t.head = 0 then t
  else begin
    let n = t.len in
    let out = make_ring ~wrap:false (max 1 n) in
    for i = 0 to n - 1 do
      let j = (t.head + i) mod t.cap in
      out.ts.(i) <- t.ts.(j);
      out.code.(i) <- t.code.(j);
      out.track.(i) <- t.track.(j);
      out.a0.(i) <- t.a0.(j);
      out.a1.(i) <- t.a1.(j)
    done;
    out.len <- n;
    out.dropped <- t.dropped;
    out.shard_stride <- t.shard_stride;
    out
  end

let call_begin t ~sandbox = emit t (pack 0 ph_begin) sandbox 0 0
let call_end t ~sandbox = emit t (pack 0 ph_end) sandbox 0 0

let hostcall t ~sandbox ~cls ~cycles =
  let cls = if cls < 0 || cls > 2 then 2 else cls in
  emit t (pack (1 + cls) ph_instant) sandbox cycles 0

let instantiate t ~sandbox ~warm =
  emit t (pack (if warm then 5 else 4) ph_instant) sandbox 0 0

let recycle t ~sandbox ~pages = emit t (pack 6 ph_instant) sandbox pages 0
let kill t ~sandbox = emit t (pack 7 ph_instant) sandbox 0 0

let fault t ~sandbox ~addr ~write =
  emit t (pack 8 ph_instant) sandbox addr (if write then 1 else 0)

let pkru_write t ~value = emit t (pack 9 ph_instant) (-1) value 0
let tlb_fill t ~page = emit t (pack 10 ph_instant) (-1) page 0
let tlb_evict t ~page = emit t (pack 11 ph_instant) (-1) page 0

let fuel_checkpoint t ~sandbox ~executed =
  emit t (pack 12 ph_instant) sandbox executed 0

let request_begin t ~tenant = emit t (pack 13 ph_begin) tenant 0 0

let request_end t ~tenant ~ok =
  emit t (pack 13 ph_end) tenant 0 (if ok then 1 else 0)

let admission_admit t ~tenant ~sojourn = emit t (pack 14 ph_instant) tenant sojourn 0

let admission_queue t ~tenant ~depth = emit t (pack 15 ph_instant) tenant depth 0

let admission_shed t ~tenant ~sojourn ~reason =
  emit t (pack 16 ph_instant) tenant sojourn reason

let breaker_open t ~tenant ~backoff = emit t (pack 17 ph_instant) tenant backoff 0
let breaker_half_open t ~tenant = emit t (pack 18 ph_instant) tenant 0 0
let breaker_close t ~tenant = emit t (pack 19 ph_instant) tenant 0 0
let degrade_step t ~level = emit t (pack 20 ph_instant) (-1) level 0

(* [cls] is the promoted block's class rank (0 = pure, 1 = load,
   2 = hazard); each class gets its own event name so occupancy per class
   falls out of a name histogram. *)
let tier_promote t ~cls ~block ~len =
  let name = match cls with 0 -> 21 | 1 -> 22 | _ -> 23 in
  emit t (pack name ph_instant) (-1) block len

(* Burn rates are carried in milliburns (burn rate x 1000, truncated)
   so the integer-only event payload keeps three decimal places; [window]
   is 0 for the fast window, 1 for the slow one. *)
let slo_burn_start t ~tenant ~burn_milli ~window =
  emit t (pack 24 ph_instant) tenant burn_milli window

let slo_burn_stop t ~tenant ~burn_milli ~window =
  emit t (pack 25 ph_instant) tenant burn_milli window

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

type event = {
  ev_ts : int;
  ev_cat : string;
  ev_name : string;
  ev_phase : char;
  ev_track : int;
  ev_a0 : int;
  ev_a1 : int;
}

let phase_char = function 0 -> 'B' | 1 -> 'E' | _ -> 'i'

let event_at t i =
  let c = t.code.(i) in
  let name = code_name c in
  {
    ev_ts = t.ts.(i);
    ev_cat = cat_table.(name);
    ev_name = name_table.(name);
    ev_phase = phase_char (code_phase c);
    ev_track = t.track.(i);
    ev_a0 = t.a0.(i);
    ev_a1 = t.a1.(i);
  }

let events t =
  let t = logical t in
  List.init t.len (event_at t)

let categories t =
  let t = logical t in
  let seen = Hashtbl.create 8 in
  for i = 0 to t.len - 1 do
    Hashtbl.replace seen cat_table.(code_name t.code.(i)) ()
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let validate t =
  let t = logical t in
  let last_ts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let stack track =
    match Hashtbl.find_opt stacks track with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks track s;
        s
  in
  let err = ref None in
  let fail i msg =
    if !err = None then err := Some (Printf.sprintf "event %d: %s" i msg)
  in
  for i = 0 to t.len - 1 do
    let c = t.code.(i) and track = t.track.(i) and ts = t.ts.(i) in
    (match Hashtbl.find_opt last_ts track with
    | Some prev when ts < prev ->
        fail i
          (Printf.sprintf "timestamp went backwards on track %d (%d < %d)"
             track ts prev)
    | _ -> ());
    Hashtbl.replace last_ts track ts;
    let name = code_name c in
    match code_phase c with
    | p when p = ph_begin ->
        let s = stack track in
        (* No span in the vocabulary legitimately nests inside itself on
           one track (a tenant has one in-flight request, a sandbox one
           activation), so a same-name begin inside an open span of that
           name means two streams were merged onto one track id — the
           collision sharded runs hit before track namespacing. *)
        if List.mem name !s then
          fail i
            (Printf.sprintf
               "duplicate overlapping span %S on track %d (colliding streams?)"
               name_table.(name) track);
        s := name :: !s
    | p when p = ph_end -> (
        let s = stack track in
        match !s with
        | top :: rest when top = name -> s := rest
        | top :: _ ->
            fail i
              (Printf.sprintf "span end %S does not match open span %S"
                 name_table.(name) name_table.(top))
        | [] ->
            fail i
              (Printf.sprintf "span end %S with no open span on track %d"
                 name_table.(name) track))
    | _ -> ()
  done;
  if !err = None && t.dropped = 0 then
    Hashtbl.iter
      (fun track s ->
        match !s with
        | name :: _ ->
            if !err = None then
              err :=
                Some
                  (Printf.sprintf "unclosed span %S on track %d"
                     name_table.(name) track)
        | [] -> ())
      stacks;
  match !err with None -> Ok () | Some e -> Error e

let fingerprint t =
  (* FNV-1a over the raw columns (plus length and drop count): a cheap
     order-sensitive digest for determinism and bit-identity tests.
     Wrapped tail rings hash in logical order, so the digest only
     depends on the retained stream, not on where the wrap landed. *)
  let t = logical t in
  let h = ref 0xCBF29CE484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  mix t.len;
  mix t.dropped;
  for i = 0 to t.len - 1 do
    mix t.ts.(i);
    mix t.code.(i);
    mix t.track.(i);
    mix t.a0.(i);
    mix t.a1.(i)
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Shard merge                                                         *)

let merge_shards rings =
  if rings = [] then invalid_arg "Trace.merge_shards: no rings";
  let rings = Array.of_list (List.map logical rings) in
  let k = Array.length rings in
  (* Stride for sandbox-track namespacing: one past the widest sandbox
     track id seen in any shard, so shard [s]'s track [v] maps to
     [s * stride + v] and ranges never overlap. Machine tracks ([-1])
     map to [-(s + 1)]. A single ring keeps its tracks untouched, which
     makes the 1-shard merge bit-identical to the input. *)
  let stride =
    Array.fold_left
      (fun acc r ->
        let m = ref acc in
        for i = 0 to r.len - 1 do
          if r.track.(i) >= !m then m := r.track.(i) + 1
        done;
        !m)
      1 rings
  in
  let total = Array.fold_left (fun acc r -> acc + r.len) 0 rings in
  let out = create_ring ~capacity:(max 1 total) () in
  out.shard_stride <- (if k > 1 then stride else 0);
  out.dropped <- Array.fold_left (fun acc r -> acc + r.dropped) 0 rings;
  let idx = Array.make k 0 in
  for _ = 1 to total do
    (* Pick the shard whose next event has the smallest simulated
       timestamp; scanning high-to-low with [<=] breaks ties toward the
       lowest shard id, keeping the merge deterministic. *)
    let best = ref (-1) in
    for s = k - 1 downto 0 do
      if
        idx.(s) < rings.(s).len
        && (!best < 0 || rings.(s).ts.(idx.(s)) <= rings.(!best).ts.(idx.(!best)))
      then best := s
    done;
    let s = !best in
    let r = rings.(s) in
    let i = idx.(s) in
    let track = r.track.(i) in
    let track' =
      if k = 1 then track
      else if track < 0 then track - s
      else (s * stride) + track
    in
    let j = out.len in
    out.ts.(j) <- r.ts.(i);
    out.code.(j) <- r.code.(i);
    out.track.(j) <- track';
    out.a0.(j) <- r.a0.(i);
    out.a1.(j) <- r.a1.(i);
    out.len <- j + 1;
    idx.(s) <- i + 1
  done;
  out

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

type summary = {
  s_count : int;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_total : float;
}

let summaries t =
  let t = logical t in
  let buckets : (string, Sfi_util.Hist.t) Hashtbl.t = Hashtbl.create 8 in
  let add key v =
    match Hashtbl.find_opt buckets key with
    | Some h -> Sfi_util.Hist.record h v
    | None ->
        let h = Sfi_util.Hist.create () in
        Sfi_util.Hist.record h v;
        Hashtbl.add buckets key h
  in
  (* Open-span begin timestamps, per (track, name id). *)
  let open_spans : (int * int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to t.len - 1 do
    let c = t.code.(i) in
    let name = code_name c in
    let key = (t.track.(i), name) in
    match code_phase c with
    | p when p = ph_begin -> (
        match Hashtbl.find_opt open_spans key with
        | Some s -> s := t.ts.(i) :: !s
        | None -> Hashtbl.add open_spans key (ref [ t.ts.(i) ]))
    | p when p = ph_end -> (
        match Hashtbl.find_opt open_spans key with
        | Some ({ contents = start :: rest } as s) ->
            s := rest;
            add name_table.(name) (float_of_int (t.ts.(i) - start))
        | _ -> ())
    | _ ->
        (* Hostcall instants carry their cost in a0. *)
        if name >= 1 && name <= 3 then
          add name_table.(name) (float_of_int t.a0.(i))
  done;
  Hashtbl.fold
    (fun key h acc ->
      let s =
        {
          s_count = Sfi_util.Hist.count h;
          s_p50 = Sfi_util.Hist.percentile h 50.;
          s_p95 = Sfi_util.Hist.percentile h 95.;
          s_p99 = Sfi_util.Hist.percentile h 99.;
          s_total = Sfi_util.Hist.total h;
        }
      in
      (key, s) :: acc)
    buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let tid_of_track track = track + 1

let args_fields name a0 a1 =
  match name with
  | 1 | 2 | 3 -> [ ("cycles", a0) ]
  | 6 -> [ ("pages", a0) ]
  | 8 -> [ ("addr", a0); ("write", a1) ]
  | 9 -> [ ("value", a0) ]
  | 10 | 11 -> [ ("page", a0) ]
  | 12 -> [ ("executed", a0) ]
  | 13 -> [ ("ok", a1) ]
  | 14 -> [ ("sojourn", a0) ]
  | 15 -> [ ("depth", a0) ]
  | 16 -> [ ("sojourn", a0); ("reason", a1) ]
  | 17 -> [ ("backoff", a0) ]
  | 20 -> [ ("level", a0) ]
  | 21 | 22 | 23 -> [ ("block", a0); ("len", a1) ]
  | 24 | 25 -> [ ("burn_milli", a0); ("window", a1) ]
  | _ -> []

let to_chrome_json ?(process_name = "sfi-sim") t =
  let t = logical t in
  let b = Buffer.create (4096 + (t.len * 96)) in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  (* Metadata: process and per-track thread names. *)
  sep ();
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%S}}"
       process_name);
  let tracks = Hashtbl.create 8 in
  for i = 0 to t.len - 1 do
    Hashtbl.replace tracks t.track.(i) ()
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) tracks []
  |> List.sort compare
  |> List.iter (fun track ->
         let label =
           if track < 0 then
             if t.shard_stride > 0 || track < -1 then
               Printf.sprintf "machine (shard %d)" (-track - 1)
             else "machine"
           else if t.shard_stride > 0 then
             Printf.sprintf "shard %d sandbox %d" (track / t.shard_stride)
               (track mod t.shard_stride)
           else Printf.sprintf "sandbox %d" track
         in
         sep ();
         Buffer.add_string b
           (Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%S}}"
              (tid_of_track track) label));
  for i = 0 to t.len - 1 do
    let c = t.code.(i) in
    let name = code_name c in
    let ph = code_phase c in
    sep ();
    Buffer.add_string b
      (Printf.sprintf "{\"name\":%S,\"cat\":%S,\"ph\":\"%c\"" name_table.(name)
         cat_table.(name) (phase_char ph));
    if ph = ph_instant then Buffer.add_string b ",\"s\":\"t\"";
    (* trace_event timestamps are microseconds; ours are nanoseconds. *)
    Buffer.add_string b
      (Printf.sprintf ",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
         (float_of_int t.ts.(i) /. 1000.)
         (tid_of_track t.track.(i)));
    (match args_fields name t.a0.(i) t.a1.(i) with
    | [] -> ()
    | fields ->
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "%S:%d" k v))
          fields;
        Buffer.add_char b '}');
    Buffer.add_char b '}'
  done;
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser + schema check for the exported trace           *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* Escaped code points never occur in our own output; keep
                 the validator total by substituting a placeholder. *)
              if !pos + 4 >= n then fail "truncated \\u escape";
              pos := !pos + 4;
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_str (parse_string ())
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          J_arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                J_arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (
          pos := !pos + 4;
          J_bool true)
        else fail "bad literal"
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (
          pos := !pos + 5;
          J_bool false)
        else fail "bad literal"
    | 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (
          pos := !pos + 4;
          J_null)
        else fail "bad literal"
    | '0' .. '9' | '-' -> J_num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type json_report = { json_events : int; json_cats : string list }

let known_cats =
  [
    "transition";
    "lifecycle";
    "fault";
    "pkru";
    "tlb";
    "fuel";
    "request";
    "admission";
    "breaker";
    "tier";
    "slo";
  ]

let validate_chrome_json text =
  match parse_json text with
  | exception Bad_json msg -> Error ("malformed JSON: " ^ msg)
  | J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (J_arr evs) -> (
          let cats = Hashtbl.create 8 in
          let count = ref 0 in
          let check i = function
            | J_obj f -> (
                let str k = List.assoc_opt k f in
                let num k =
                  match List.assoc_opt k f with
                  | Some (J_num _) -> true
                  | _ -> false
                in
                match str "ph" with
                | Some (J_str "M") -> Ok ()
                | Some (J_str (("B" | "E" | "i") as _ph)) -> (
                    incr count;
                    if not (num "ts") then
                      Error (Printf.sprintf "event %d: missing numeric ts" i)
                    else if not (num "pid" && num "tid") then
                      Error (Printf.sprintf "event %d: missing pid/tid" i)
                    else
                      match (str "name", str "cat") with
                      | Some (J_str _), Some (J_str c)
                        when List.mem c known_cats ->
                          Hashtbl.replace cats c ();
                          Ok ()
                      | Some (J_str _), Some (J_str c) ->
                          Error
                            (Printf.sprintf "event %d: unknown category %S" i c)
                      | _ ->
                          Error
                            (Printf.sprintf "event %d: missing name or cat" i))
                | Some (J_str ph) ->
                    Error (Printf.sprintf "event %d: unknown phase %S" i ph)
                | _ -> Error (Printf.sprintf "event %d: missing phase" i))
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          let rec go i = function
            | [] -> Ok ()
            | e :: rest -> (
                match check i e with Ok () -> go (i + 1) rest | err -> err)
          in
          match go 0 evs with
          | Ok () ->
              Ok
                {
                  json_events = !count;
                  json_cats =
                    List.sort compare
                      (Hashtbl.fold (fun k () acc -> k :: acc) cats []);
                }
          | Error _ as e -> e)
      | _ -> Error "missing traceEvents array")
  | _ -> Error "top level is not an object"

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let prom_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Exposition-format escaping: HELP text escapes backslash and newline;
   label values additionally escape the double quote. *)
let prom_escape ~quote s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus_labeled metrics =
  let b = Buffer.create 512 in
  (* One HELP/TYPE header per metric name, emitted at its first sample;
     later samples of the same family (other label sets) follow bare. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, help, labels, v) ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" name (prom_escape ~quote:false help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name)
      end;
      Buffer.add_string b name;
      (match labels with
      | [] -> ()
      | ls ->
          Buffer.add_char b '{';
          List.iteri
            (fun i (k, lv) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "%s=\"%s\"" k (prom_escape ~quote:true lv)))
            ls;
          Buffer.add_char b '}');
      Buffer.add_string b (Printf.sprintf " %s\n" (prom_value v)))
    metrics;
  Buffer.contents b

let prometheus metrics =
  prometheus_labeled (List.map (fun (n, h, v) -> (n, h, [], v)) metrics)
