(** Fault flight recorder: a cheap always-on keep-last ring plus frozen
    post-mortem bundles.

    The recorder shadows whatever primary trace sink a run uses. When
    the primary is a real ring, the recorder taps it as a tee — so it
    keeps seeing events after the primary fills up and starts dropping.
    When the run is otherwise untraced the recorder's own tail ring
    becomes the effective sink, so post-mortems work without paying for
    a full trace capture.

    On a notable condition (containment fault, breaker trip, chaos
    perturbation) the caller {!freeze}s a bundle: the last-N events, a
    named counter snapshot (machine counters, admission/breaker/ladder
    state), and the simulated time of the freeze. The latest bundle per
    reason is retained, so one cheap recorder yields a post-mortem for
    every distinct fault class seen. *)

type bundle = {
  b_reason : string;  (** e.g. ["fault"], ["breaker.open"], ["chaos.kill"] *)
  b_seq : int;  (** freeze ordinal within this recorder (0-based) *)
  b_at_ns : int;  (** simulated time of the freeze *)
  b_events : Trace.event list;  (** last-N events, oldest first *)
  b_dropped : int;  (** events that had scrolled out of the tail ring *)
  b_counters : (string * float) list;  (** state snapshot at freeze time *)
}

type t

val create : ?capacity:int -> unit -> t
(** A recorder whose tail ring keeps the last [capacity] (default
    [256]) events. *)

val tap : t -> Trace.t -> Trace.t
(** [tap fr primary] arms the recorder against [primary] and returns
    the sink the run should emit into: [primary] itself (now teeing
    into the recorder) when it is enabled, or the recorder's own tail
    ring when the run is untraced. *)

val freeze : t -> reason:string -> at_ns:int -> counters:(string * float) list -> unit
(** Snapshot the tail ring and the given counters into a bundle for
    [reason], replacing any earlier bundle with the same reason (the
    freeze ordinal still advances). *)

val freezes : t -> int
(** Total number of {!freeze} calls (including replaced bundles). *)

val bundles : t -> bundle list
(** Retained bundles, most recent freeze first. *)

val find : t -> string -> bundle option
(** The retained bundle for [reason], if any. *)

val render : bundle -> string
(** Human-readable post-mortem: reason and time, counter snapshot, and
    the captured event tail — the [sfi postmortem] output format. *)
