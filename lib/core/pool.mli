(** The Wasmtime-style pooling allocator slot layout, with ColorGuard
    striping (§5.1).

    The pooling allocator pre-reserves one big slab and carves it into
    fixed-stride slots used as linear memories. Without striping, each
    slot's stride covers the expected reservation plus its guard region;
    adjacent slots share guards when pre-guards are enabled (the 2 GiB +
    2 GiB trick that cuts 8 GiB/instance to 6 GiB). With striping, slots
    pack at (nearly) the linear-memory size and MPK colors provide the
    isolation distance: consecutive same-colored slots must still be at
    least [max(expected_slot_bytes, max_memory_bytes) + guard_bytes] apart
    (Table 1, invariant 6), so the stride is
    [ceil(needed_distance / num_stripes)] when the color budget is the
    binding constraint.

    The layout this module computes is the {e contract} between allocator
    and compiler: if it is wrong, isolation breaks — which is why
    {!Invariants} re-checks every Table 1 property and why the arithmetic
    mode is explicit ({!Checked.mode}; the saturating mode reproduces the
    bug found by verification, §5.2). *)

type params = {
  num_slots : int;  (** slots (≈ concurrent instances) in the pool *)
  max_memory_bytes : int;  (** largest linear memory a slot must hold *)
  expected_slot_bytes : int;
      (** virtual reservation each instance expects (4 GiB for vanilla
          wasm32; smaller when the embedder caps memories) *)
  guard_bytes : int;  (** total guard per slot (pre+post when enabled) *)
  pre_guard_enabled : bool;
      (** reserve part of the guard before the slot; enables the
          signed-offset trick and guard sharing (§5.1) *)
  num_pkeys_available : int;
      (** MPK keys usable for striping (≤ 15; 0 disables) *)
  stripe_enabled : bool;
}

val default_params : params
(** 64 slots, 4 GiB expected, 4 GiB max memory, 4 GiB guard, no pre-guard,
    no striping. *)

type layout = {
  slot_bytes : int;  (** stride between consecutive slot bases *)
  pre_slot_guard_bytes : int;
  post_slot_guard_bytes : int;
  num_stripes : int;  (** 1 = no striping *)
  total_slot_bytes : int;
      (** whole-slab reservation:
          pre + slot_bytes * num_slots + post (invariant 1) *)
  params : params;
}

val compute : ?arith:Checked.mode -> ?defensive:bool -> params -> (layout, string) result
(** Compute the slab layout. [arith] defaults to [Checked]; [Saturating]
    reproduces the §5.2 bug on adversarial inputs. [defensive] (default
    true) enforces the four preconditions verification found missing
    (Table 1, invariants 7-10); pass false to model the pre-verification
    allocator, whose property tests the invariant checker can then fail. *)

type stripe_status =
  | Striped  (** MPK striping engaged ([num_stripes > 1]) *)
  | Unstriped  (** striping was never requested *)
  | Guards_fallback of string
      (** striping was requested but could not engage (key/slot budget, or
          the striped layout was rejected); the layout isolates with guard
          regions alone — the Invariant 5 degradation path (§5.1). The
          string names the binding constraint. *)

val compute_with_fallback :
  ?arith:Checked.mode ->
  ?defensive:bool ->
  params ->
  (layout * stripe_status, string) result
(** Like {!compute}, but when a striped layout is rejected, retry with
    [stripe_enabled = false] instead of failing — runtimes degrade to
    guard-region isolation rather than refusing to boot. Only a layout
    that fails even without striping returns [Error]. *)

val pp_stripe_status : Format.formatter -> stripe_status -> unit

val slot_base : layout -> int -> int
(** Byte offset of slot [i]'s linear memory within the slab. Raises
    [Invalid_argument] when out of range. *)

val color_of_slot : layout -> int -> int
(** MPK color for slot [i]: [1 + (i mod num_stripes)] under striping (color
    0 stays reserved for non-sandbox memory), 0 otherwise. *)

val bytes_to_next_stripe_slot : layout -> int
(** Distance between two consecutive same-colored slot bases —
    [num_stripes * slot_bytes]; invariant 6's left-hand side. *)

val density_vs_unstriped : params -> float
(** How many times more instances fit per byte of address space with
    striping than without (the paper's "up to 15x"). *)

val max_slots_in : params -> address_space_bytes:int -> int
(** How many slots fit a given address budget under this configuration —
    the §6.4.2 scaling microbenchmark. *)

val pp_layout : Format.formatter -> layout -> unit
