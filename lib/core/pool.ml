module Units = Sfi_util.Units

type params = {
  num_slots : int;
  max_memory_bytes : int;
  expected_slot_bytes : int;
  guard_bytes : int;
  pre_guard_enabled : bool;
  num_pkeys_available : int;
  stripe_enabled : bool;
}

let default_params =
  {
    num_slots = 64;
    max_memory_bytes = 4 * Units.gib;
    expected_slot_bytes = 4 * Units.gib;
    guard_bytes = 4 * Units.gib;
    pre_guard_enabled = false;
    num_pkeys_available = 0;
    stripe_enabled = false;
  }

type layout = {
  slot_bytes : int;
  pre_slot_guard_bytes : int;
  post_slot_guard_bytes : int;
  num_stripes : int;
  total_slot_bytes : int;
  params : params;
}

exception Bad of string

let failf fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let compute_exn ~arith ~defensive (p : params) =
  if p.num_slots < 1 then failf "num_slots must be at least 1";
  if p.max_memory_bytes <= 0 || p.expected_slot_bytes <= 0 || p.guard_bytes < 0 then
    failf "sizes must be positive";
  if p.num_pkeys_available < 0 || p.num_pkeys_available > Sfi_vmem.Mpk.max_usable_keys then
    failf "num_pkeys_available out of range";
  if defensive then begin
    (* The four preconditions the verification effort found missing
       (Table 1, invariants 7-10). Without them, unaligned inputs produce
       layouts whose guards are not page-protectable. *)
    if p.expected_slot_bytes mod Units.wasm_page_size <> 0 then
      failf "expected_slot_bytes must be a multiple of the Wasm page size (inv 7)";
    if p.max_memory_bytes mod Units.wasm_page_size <> 0 then
      failf "max_memory_bytes must be a multiple of the Wasm page size (inv 8)";
    if p.guard_bytes mod Units.os_page_size <> 0 then
      failf "guard_bytes must be a multiple of the OS page size (inv 9)";
    ()
  end;
  let add = Checked.add arith and mul = Checked.mul arith in
  let reservation = max p.expected_slot_bytes p.max_memory_bytes in
  (* Distance two same-colored (or consecutive unstriped) slots must keep. *)
  let needed_distance = add reservation p.guard_bytes in
  let pre = if p.pre_guard_enabled then Units.align_up (p.guard_bytes / 2) Units.os_page_size else 0 in
  let striping =
    p.stripe_enabled && p.num_pkeys_available >= 2 && p.num_slots >= 2
    && p.max_memory_bytes < reservation + p.guard_bytes
  in
  let num_stripes, slot_bytes =
    if striping then begin
      (* Colors wanted so that slots pack at linear-memory size; capped by
         the available keys, the slot count, and invariant 5's bound. *)
      let bound_inv5 = (p.guard_bytes / p.max_memory_bytes) + 2 in
      let wanted = (needed_distance + p.max_memory_bytes - 1) / p.max_memory_bytes in
      let stripes = min (min p.num_pkeys_available p.num_slots) (min bound_inv5 wanted) in
      if stripes < 2 then
        (1, Checked.align_up arith (add reservation (p.guard_bytes - pre)) Units.wasm_page_size)
      else begin
        (* Stride so that same-colored slots are needed_distance apart; when
           the color budget binds, the stride grows beyond max_memory —
           "a combination of stripes and guard regions" (§5.1). *)
        let stride = (needed_distance + stripes - 1) / stripes in
        let stride = Checked.align_up arith (max stride p.max_memory_bytes) Units.wasm_page_size in
        (stripes, stride)
      end
    end
    else
      (* The stride must stay Wasm-page aligned (invariant 3); rounding up
         only widens the guard slightly. *)
      (1, Checked.align_up arith (add reservation (p.guard_bytes - pre)) Units.wasm_page_size)
  in
  (* The slab's trailing guard: the last slot must not rely on MPK for
     protection (invariant 6, second line). *)
  let post =
    if num_stripes > 1 then
      Units.align_up (max 0 (needed_distance - slot_bytes)) Units.os_page_size
    else if p.pre_guard_enabled then pre
    else 0
  in
  let total = add (add pre (mul slot_bytes p.num_slots)) post in
  if defensive && total > Units.user_address_space_bytes then
    failf "total slab (%s) exceeds the user address space (inv 10)" (Units.to_string total);
  {
    slot_bytes;
    pre_slot_guard_bytes = pre;
    post_slot_guard_bytes = post;
    num_stripes;
    total_slot_bytes = total;
    params = p;
  }

let compute ?(arith = Checked.Checked) ?(defensive = true) p =
  match compute_exn ~arith ~defensive p with
  | layout -> Ok layout
  | exception Bad msg -> Error msg
  | exception Checked.Overflow what -> Error ("arithmetic overflow: " ^ what)

type stripe_status =
  | Striped
  | Unstriped
  | Guards_fallback of string

let compute_with_fallback ?(arith = Checked.Checked) ?(defensive = true) (p : params) =
  if not p.stripe_enabled then
    match compute ~arith ~defensive p with
    | Ok l -> Ok (l, Unstriped)
    | Error _ as e -> (e :> (layout * stripe_status, string) result)
  else
    match compute ~arith ~defensive p with
    | Ok l when l.num_stripes > 1 -> Ok (l, Striped)
    | Ok l ->
        (* compute already degraded to a single stripe: striping was
           requested but could not engage. Name the binding constraint. *)
        let reason =
          if p.num_pkeys_available < 2 then "fewer than 2 MPK keys available"
          else if p.num_slots < 2 then "fewer than 2 slots"
          else "guard region already covers the isolation distance"
        in
        Ok (l, Guards_fallback reason)
    | Error msg -> (
        (* Striped layout rejected outright (overflow / invariant failure):
           retry as a plain guard-region pool — the Invariant 5 path. *)
        match compute ~arith ~defensive { p with stripe_enabled = false } with
        | Ok l -> Ok (l, Guards_fallback ("striping rejected: " ^ msg))
        | Error msg' -> Error msg')

let pp_stripe_status ppf = function
  | Striped -> Format.pp_print_string ppf "striped"
  | Unstriped -> Format.pp_print_string ppf "unstriped"
  | Guards_fallback why -> Format.fprintf ppf "guards fallback (%s)" why

let slot_base l i =
  if i < 0 || i >= l.params.num_slots then invalid_arg "Pool.slot_base: out of range";
  l.pre_slot_guard_bytes + (i * l.slot_bytes)

let color_of_slot l i =
  if i < 0 || i >= l.params.num_slots then invalid_arg "Pool.color_of_slot: out of range";
  if l.num_stripes <= 1 then 0 else 1 + (i mod l.num_stripes)

let bytes_to_next_stripe_slot l = l.num_stripes * l.slot_bytes

let stride_of p =
  match compute { p with num_slots = max p.num_slots 16 } with
  | Ok l -> l.slot_bytes
  | Error msg -> invalid_arg ("Pool.density_vs_unstriped: " ^ msg)

let density_vs_unstriped p =
  let striped = stride_of { p with stripe_enabled = true } in
  let unstriped = stride_of { p with stripe_enabled = false } in
  float_of_int unstriped /. float_of_int striped

let max_slots_in p ~address_space_bytes =
  (* Find the largest slot count whose slab fits the budget. The stride is
     independent of num_slots (once striping can engage), so solve directly
     from a small representative layout. *)
  match compute { p with num_slots = max p.num_slots 16 } with
  | Error msg -> invalid_arg ("Pool.max_slots_in: " ^ msg)
  | Ok l ->
      let fixed = l.pre_slot_guard_bytes + l.post_slot_guard_bytes in
      if address_space_bytes <= fixed then 0
      else (address_space_bytes - fixed) / l.slot_bytes

let pp_layout ppf l =
  Format.fprintf ppf
    "@[<v>slots: %d x %a (stride)@,pre-guard: %a@,post-guard: %a@,stripes: %d@,total slab: %a@]"
    l.params.num_slots Units.pp_bytes l.slot_bytes Units.pp_bytes l.pre_slot_guard_bytes
    Units.pp_bytes l.post_slot_guard_bytes l.num_stripes Units.pp_bytes l.total_slot_bytes
