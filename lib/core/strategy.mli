(** SFI compilation strategies.

    A strategy is the cross product of {e how the heap base is added} to the
    32-bit linear-memory offset (the axis Segue optimizes) and {e how bounds
    are enforced} (guard regions, explicit checks, or historic masking —
    §2's discussion and §6.1's bounds-check experiment). *)

(** How sandboxed memory operands reach their linear memory:

    - [Direct]: no sandboxing; addresses used as-is. The native baseline
      all figures normalize to.
    - [Reserved_base]: classic Wasm/SFI — a reserved GPR ([r14] here, [rax]
      in Figure 1) holds the heap base and occupies the base slot of every
      memory operand. Complex address expressions need an extra [lea], and
      one register is lost to the reservation.
    - [Segment]: Segue — the heap base lives in [%gs]; memory operands use
      segment-relative addressing with the address-size override, freeing
      the base slot, the register, and folding the 32-bit truncation into
      the access (Figure 1c).
    - [Segment_loads_only]: WAMR's tuning knob (§4.2/§6.2) — loads go
      through [%gs] but stores keep the reserved-base scheme (so the base
      register stays reserved and base-register-pattern optimizations such
      as the vectorizer keep working). *)
type addressing = Direct | Reserved_base | Segment | Segment_loads_only

(** How out-of-bounds accesses trap:

    - [Guard_region]: rely on the unmapped (or differently-colored) pages
      after linear memory; no per-access code.
    - [Explicit_check]: compare against the current memory bound (loaded
      from the instance context) before each access — what engines must do
      for 64-bit memories (§6.1).
    - [Mask]: Wahbe-style masking; forces the offset into the region but
      turns out-of-bounds accesses into wrap-around instead of traps, which
      Wasm proper cannot use (§2, footnote 1). *)
type bounds = Guard_region | Explicit_check | Mask

type t = { addressing : addressing; bounds : bounds }

val native : t
(** [Direct] + [Guard_region] (no checks emitted). *)

val wasm_default : t
(** [Reserved_base] + [Guard_region]: stock Wasm2c / Wasmtime / WAMR. *)

val segue : t
(** [Segment] + [Guard_region]: the paper's headline configuration. *)

val segue_loads_only : t
val wasm_bounds_checked : t
val segue_bounds_checked : t

val masked : t
(** [Reserved_base] + [Mask]: Wahbe-style masking (wrap-around, no trap). *)

val all_sfi : t list
(** The six sandboxing strategies (everything except {!native}), in
    canonical order — the oracle set the differential fuzzer runs every
    program through. *)

val reserves_base_register : t -> bool
(** Does this strategy keep a GPR pinned to the heap base? True for
    [Reserved_base] and [Segment_loads_only]. *)

val uses_segment : t -> bool
(** Does this strategy set [%gs] on sandbox entry? *)

val name : t -> string
val pp : Format.formatter -> t -> unit
