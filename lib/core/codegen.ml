module W = Sfi_wasm.Ast
module X = Sfi_x86.Ast
module Vec = Sfi_util.Vec

type config = {
  strategy : Strategy.t;
  table_base : int;
  table_types_base : int;
  vectorize : bool;
  colorguard : bool;
  lfi_reserve_base : bool;
  segue_cost_function : bool;
}

let default_config ?(strategy = Strategy.wasm_default) () =
  {
    strategy;
    table_base = 0x3000_0000;
    table_types_base = 0x3100_0000;
    vectorize = false;
    colorguard = false;
    lfi_reserve_base = false;
    segue_cost_function = false;
  }

let vmctx_memory_bytes = 0
let vmctx_heap_base = 8
let vmctx_pkru_sandbox = 16
let vmctx_pkru_host = 24
let vmctx_stack_limit = 32
let vmctx_globals = 40

let hostcall_memory_grow = 0x1000

type compiled = {
  program : X.program;
  config : config;
  source : W.module_;
  entry_labels : (string * string) list;
  func_labels : string array;
  table_entries : (string * int) array;
  code_bytes : int;
}

let entry_label c name = List.assoc name c.entry_labels

(* ------------------------------------------------------------------ *)
(* Register conventions.                                               *)
(* ------------------------------------------------------------------ *)

(* Operand-stack ring: depth d lives in ring.(d); deeper values spill. *)
let stack_ring = [| X.RAX; X.RCX; X.RDX; X.RSI; X.RDI; X.R11 |]
let ring_len = Array.length stack_ring

(* Register homes for locals; R14 joins the pool when the strategy does not
   reserve it for the heap base — Segue's freed GPR. *)
let local_pool cfg =
  let base = [ X.RBX; X.R8; X.R9; X.R10; X.R12; X.R13 ] in
  if Strategy.reserves_base_register cfg.strategy || cfg.lfi_reserve_base then base
  else base @ [ X.R14 ]

let heap_base_reg = X.R14
let scratch = X.R15

(* Hostcall argument registers (SysV-flavored); imports take at most 3. *)
let hostcall_args = [| X.RDI; X.RSI; X.RDX |]

(* ------------------------------------------------------------------ *)
(* Virtual stack entries.                                              *)
(* ------------------------------------------------------------------ *)

(* A lazy i32 address expression: base + index*scale + disp. [aclean] means
   every register holds a zero-extended 32-bit value, so the expression may
   be evaluated with 64-bit arithmetic without truncation. *)
type aexpr = {
  abase : X.gpr option;
  aindex : (X.gpr * X.scale) option;
  adisp : int32;
  aclean : bool;
}

type loc =
  | Lconst of int64
  | Laddr of aexpr (* i32 value, lazily represented *)
  | Lalias of X.gpr (* value readable in a register we do not own (a local home) *)
  | Lreg (* value in the canonical ring register for its depth *)
  | Lspill (* value in this depth's frame slot *)

type entry = { ty : W.valty; mutable loc : loc }

type home = Hreg of X.gpr | Hframe of int

type cframe = {
  kind : [ `Block | `Loop | `If ];
  branch_label : string;
  end_label : string;
  result : W.valty option;
  entry_sp : int;
}

type fctx = {
  cfg : config;
  m : W.module_;
  code : X.instr Vec.t;
  mutable vstack : entry array;
  mutable sp : int;
  homes : home array;
  local_tys : W.valty array;
  n_frame_locals : int;
  mutable max_depth : int;
  mutable frames : cframe list;
  fname : string;
  epilogue : string;
  result_ty : W.valty option;
  fresh : int ref; (* module-wide label counter *)
  saved_regs : X.gpr list;
}

let emit ctx i = ignore (Vec.push ctx.code i)

let fresh_label ctx prefix =
  incr ctx.fresh;
  Printf.sprintf ".L%s%d" prefix !(ctx.fresh)

let ring d = stack_ring.(d)

let frame_slot _ctx k = X.mem ~base:X.RBP ~disp:(-8 * (k + 1)) ()
let vslot ctx d = frame_slot ctx (ctx.n_frame_locals + d)
let fs_mem disp = X.mem ~seg:X.FS ~disp ()

let note_depth ctx d = if d + 1 > ctx.max_depth then ctx.max_depth <- d + 1

let entry_at ctx d = ctx.vstack.(d)

let push_entry ctx ty loc =
  if ctx.sp = Array.length ctx.vstack then begin
    let bigger = Array.make (max 16 (2 * ctx.sp)) { ty = W.I32; loc = Lconst 0L } in
    Array.blit ctx.vstack 0 bigger 0 ctx.sp;
    ctx.vstack <- bigger
  end;
  ctx.vstack.(ctx.sp) <- { ty; loc };
  ctx.sp <- ctx.sp + 1;
  note_depth ctx (ctx.sp - 1)

let pop_entry ctx =
  assert (ctx.sp > 0);
  ctx.sp <- ctx.sp - 1;
  ctx.vstack.(ctx.sp)

(* Push a lazily-located value. Deep stack positions (beyond the register
   ring) must not hold lazy locations — they are evaluated through the
   scratch register into their frame slot immediately, so later scratch
   users cannot clobber them. *)
let push_lazy ctx ty loc =
  if ctx.sp < ring_len then push_entry ctx ty loc
  else
    match loc with
    | Lconst _ | Lspill | Lreg -> push_entry ctx ty loc
    | Lalias r ->
        emit ctx (X.Mov (X.W64, X.Reg scratch, X.Reg r));
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx ctx.sp), X.Reg scratch));
        push_entry ctx ty Lspill
    | Laddr a ->
        emit ctx
          (X.Lea (X.W32, scratch, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()));
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx ctx.sp), X.Reg scratch));
        push_entry ctx ty Lspill

(* Does [e]'s location reference register [r]? *)
let references r (e : entry) =
  match e.loc with
  | Lalias r' -> r = r'
  | Laddr a -> (
      (match a.abase with Some r' -> r' = r | None -> false)
      || match a.aindex with Some (r', _) -> r' = r | None -> false)
  | Lconst _ | Lreg | Lspill -> false

let width_of ty = match ty with W.I32 -> X.W32 | W.I64 -> X.W64

(* Materialize the entry at depth [d] into its canonical location: the ring
   register when d < ring_len, otherwise its frame slot (via the scratch
   register). *)
let rec materialize ctx d =
  let e = entry_at ctx d in
  let target = if d < ring_len then ring d else scratch in
  match e.loc with
  | Lreg | Lspill | Lconst _ -> ()
  | Lalias r ->
      claim_reg ctx target ~except:d;
      emit ctx (X.Mov (X.W64, X.Reg target, X.Reg r));
      if d < ring_len then e.loc <- Lreg
      else begin
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg scratch));
        e.loc <- Lspill
      end
  | Laddr a ->
      claim_reg ctx target ~except:d;
      (* A 32-bit lea both evaluates and truncates the expression. *)
      emit ctx
        (X.Lea (X.W32, target, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()));
      if d < ring_len then e.loc <- Lreg
      else begin
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg scratch));
        e.loc <- Lspill
      end

(* Make register [r] safe to overwrite: any other entry lazily referencing
   it is materialized first. *)
and claim_reg ctx r ~except =
  for d = 0 to ctx.sp - 1 do
    if d <> except && references r (entry_at ctx d) then materialize ctx d
  done

(* Materialize an entry that has been popped (its depth was [d] = current
   sp position it occupied). Returns the register holding the value. *)
let force_reg ctx d (e : entry) =
  (* [d] is the entry's own (possibly already-popped) depth; excluding it
     from the claim keeps a still-live entry from materializing itself
     twice. *)
  let target = if d < ring_len then ring d else scratch in
  match e.loc with
  | Lreg -> if d < ring_len then ring d else scratch
  | Lalias r -> r
  | Lconst c ->
      claim_reg ctx target ~except:d;
      emit ctx (X.Mov (X.W64, X.Reg target, X.Imm c));
      target
  | Laddr { abase = Some r; aindex = None; adisp = 0l; aclean = true } -> r
  | Laddr a ->
      claim_reg ctx target ~except:d;
      emit ctx
        (X.Lea (X.W32, target, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()));
      e.loc <- (if d < ring_len then Lreg else e.loc);
      target
  | Lspill ->
      claim_reg ctx target ~except:d;
      emit ctx (X.Mov (X.W64, X.Reg target, X.Mem (vslot ctx d)));
      e.loc <- (if d < ring_len then Lreg else e.loc);
      target

(* A readable operand for a popped entry; may be an immediate or a frame
   slot. [no_imm]/[no_mem] force registers when x86 encoding forbids the
   other forms. *)
let force_operand ?(no_imm = false) ?(no_mem = false) ctx d (e : entry) =
  match e.loc with
  | Lconst c when not no_imm -> X.Imm c
  | Lspill when not no_mem -> X.Mem (vslot ctx d)
  | _ -> X.Reg (force_reg ctx d e)

(* ------------------------------------------------------------------ *)
(* Address-expression algebra (i32).                                   *)
(* ------------------------------------------------------------------ *)

let aexpr_of_const c = { abase = None; aindex = None; adisp = Int64.to_int32 c; aclean = true }
let aexpr_of_reg ?(clean = true) r = { abase = Some r; aindex = None; adisp = 0l; aclean = clean }

(* View a popped entry as an address expression (may emit a reload). *)
let aval ctx d (e : entry) =
  match e.loc with
  | Lconst c -> aexpr_of_const c
  | Laddr a -> a
  | Lalias r -> aexpr_of_reg r (* locals hold zero-extended values *)
  | Lreg -> aexpr_of_reg (if d < ring_len then ring d else scratch)
  | Lspill -> aexpr_of_reg (force_reg ctx d e)

let scale_value = function X.S1 -> 1 | X.S2 -> 2 | X.S4 -> 4 | X.S8 -> 8
let scale_of_value = function
  | 1 -> Some X.S1 | 2 -> Some X.S2 | 4 -> Some X.S4 | 8 -> Some X.S8 | _ -> None

(* Merge two address expressions for i32 add; None when it needs more than
   base + index*scale + disp. *)
let merge_add a b =
  let regs =
    (match a.abase with Some r -> [ (r, 1) ] | None -> [])
    @ (match a.aindex with Some (r, s) -> [ (r, scale_value s) ] | None -> [])
    @ (match b.abase with Some r -> [ (r, 1) ] | None -> [])
    @ match b.aindex with Some (r, s) -> [ (r, scale_value s) ] | None -> []
  in
  let disp = Int32.add a.adisp b.adisp in
  let clean = a.aclean && b.aclean in
  match regs with
  | [] -> Some { abase = None; aindex = None; adisp = disp; aclean = clean }
  | [ (r, 1) ] -> Some { abase = Some r; aindex = None; adisp = disp; aclean = clean }
  | [ (r, s) ] ->
      Some
        {
          abase = None;
          aindex = Some (r, Option.get (scale_of_value s));
          adisp = disp;
          aclean = clean;
        }
  | [ (r1, 1); (r2, s2) ] when s2 >= 1 ->
      Some
        {
          abase = Some r1;
          aindex =
            (if s2 = 1 then Some (r2, X.S1) else Some (r2, Option.get (scale_of_value s2)));
          adisp = disp;
          aclean = clean;
        }
  | [ (r1, s1); (r2, 1) ] when s1 > 1 ->
      Some
        {
          abase = Some r2;
          aindex = Some (r1, Option.get (scale_of_value s1));
          adisp = disp;
          aclean = clean;
        }
  | _ -> None

(* Scale an address expression by 2^k (i32 shl by constant). *)
let scale_shl a k =
  if k < 0 || k > 3 then None
  else
    let factor = 1 lsl k in
    match (a.abase, a.aindex) with
    | Some r, None ->
        Some
          {
            abase = None;
            aindex = Some (r, Option.get (scale_of_value factor));
            adisp = Int32.shift_left a.adisp k;
            aclean = a.aclean;
          }
    | None, Some (r, s) ->
        let s' = scale_value s * factor in
        if s' > 8 then None
        else
          Some
            {
              abase = None;
              aindex = Some (r, Option.get (scale_of_value s'));
              adisp = Int32.shift_left a.adisp k;
              aclean = a.aclean;
            }
    | None, None -> Some { a with adisp = Int32.shift_left a.adisp k }
    | Some _, Some _ -> None

(* Multiply by 3, 5 or 9: lea's r + r*s pattern. *)
let scale_mul a c =
  match (c, a.abase, a.aindex, a.adisp) with
  | (3 | 5 | 9), Some r, None, 0l ->
      Some
        {
          abase = Some r;
          aindex = Some (r, Option.get (scale_of_value (c - 1)));
          adisp = 0l;
          aclean = a.aclean;
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Result targets.                                                     *)
(* ------------------------------------------------------------------ *)

(* Register to compute a new top-of-stack value into, plus the push that
   records it. Deep values go through the scratch register to their frame
   slot. *)
let result_target ctx ty =
  let d = ctx.sp in
  if d < ring_len then begin
    let r = ring d in
    claim_reg ctx r ~except:(-1);
    (r, fun () -> push_entry ctx ty Lreg)
  end
  else
    ( scratch,
      fun () ->
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg scratch));
        push_entry ctx ty Lspill )

(* Move the value at the top of the stack into ring.(target_depth) — used
   when branches carry a block result. *)
let move_top_to ctx target_depth =
  let d = ctx.sp - 1 in
  let e = entry_at ctx d in
  if target_depth >= ring_len then begin
    (* Deep merge point: the result lives in the frame slot. *)
    let r = force_reg ctx d e in
    emit ctx (X.Mov (X.W64, X.Mem (vslot ctx target_depth), X.Reg r))
  end
  else
  let tgt = ring target_depth in
  let already =
    match e.loc with
    | Lreg -> d < ring_len && ring d = tgt
    | Lalias r -> r = tgt
    | _ -> false
  in
  if not already then begin
    claim_reg ctx tgt ~except:d;
    match e.loc with
    | Lconst c -> emit ctx (X.Mov (X.W64, X.Reg tgt, X.Imm c))
    | Laddr a ->
        emit ctx
          (X.Lea (X.W32, tgt, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()))
    | Lalias r -> emit ctx (X.Mov (X.W64, X.Reg tgt, X.Reg r))
    | Lreg ->
        let src = if d < ring_len then ring d else scratch in
        emit ctx (X.Mov (X.W64, X.Reg tgt, X.Reg src))
    | Lspill -> emit ctx (X.Mov (X.W64, X.Reg tgt, X.Mem (vslot ctx d)))
  end

(* Normalize every live entry to a control-stable location (Lconst or
   Lspill) before entering a control construct, so all paths agree on where
   values live at the merge point. *)
let normalize_for_control ctx =
  for d = 0 to ctx.sp - 1 do
    let e = entry_at ctx d in
    (match e.loc with
    | Lconst _ | Lspill -> ()
    | _ ->
        materialize ctx d;
        (* materialize leaves deep entries spilled already *)
        if d < ring_len then begin
          emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg (ring d)));
          e.loc <- Lspill
        end)
  done

(* Spill live entries below [keep_above] before a call. Values lazily held
   in callee-saved local homes may stay lazy. *)
let spill_for_call ctx ~keep_below =
  let local_homes =
    Array.to_list ctx.homes
    |> List.filter_map (function Hreg r -> Some r | Hframe _ -> None)
  in
  let refs_only_homes (e : entry) =
    match e.loc with
    | Lalias r -> List.mem r local_homes
    | Laddr a ->
        let ok = function
          | None -> true
          | Some r -> List.mem r local_homes
        in
        ok a.abase && ok (Option.map fst a.aindex)
    | Lconst _ | Lspill -> true
    | Lreg -> false
  in
  for d = 0 to keep_below - 1 do
    let e = entry_at ctx d in
    if not (refs_only_homes e) then begin
      materialize ctx d;
      if d < ring_len then begin
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg (ring d)));
        e.loc <- Lspill
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Memory operand construction — the Segue core.                       *)
(* ------------------------------------------------------------------ *)

type eff_addressing = A_direct | A_base | A_segment

let effective_addressing cfg ~is_store =
  match cfg.strategy.Strategy.addressing with
  | Strategy.Direct -> A_direct
  | Strategy.Reserved_base -> A_base
  | Strategy.Segment -> A_segment
  | Strategy.Segment_loads_only -> if is_store then A_base else A_segment


(* Lower the (already popped) address entry into an x86 memory operand for
   an access at static offset [moffset], emitting any prelude instructions
   (lea / bounds check / mask). [d] is the stack position the entry had. *)
let lower_address ctx d (e : entry) ~moffset ~is_store =
  let cfg = ctx.cfg in
  let mode = effective_addressing cfg ~is_store in
  let a = aval ctx d e in
  match cfg.strategy.Strategy.bounds with
  | Strategy.Guard_region -> (
      match mode with
      | A_segment when
          cfg.segue_cost_function
          && Strategy.reserves_base_register cfg.strategy
          && (match (a.abase, a.aindex) with
             | Some _, None | None, None -> a.aclean
             | _ -> false)
          && Int32.to_int a.adisp + moffset >= 0
          && Int32.to_int a.adisp + moffset < 0x4000_0000 ->
          (* The paper's future-work cost function (§6.1's astar outlier):
             when the reserved-base form needs no extra lea — a single
             clean register plus a small displacement — it encodes two
             bytes shorter than the prefixed gs form, so prefer it. Only
             valid when the base register is actually reserved, i.e. for
             the loads of a Segment_loads_only build. *)
          let idx =
            match (a.abase, a.aindex) with
            | Some r, None -> Some (r, X.S1)
            | _ -> None
          in
          X.mem ~base:heap_base_reg ?index:idx ~disp:(Int32.to_int a.adisp + moffset) ()
      | A_segment ->
          (* Full folding with the address-size override: the 32-bit EA
             wrap is exactly Wasm's mod-4GiB offset arithmetic. *)
          let disp = Int32.to_int (Int32.add a.adisp (Int32.of_int moffset)) in
          X.mem ~seg:X.GS ?base:a.abase ?index:a.aindex ~disp ~addr32:true ()
      | A_direct ->
          if a.aclean then
            let disp = Int32.to_int a.adisp + moffset in
            X.mem ?base:a.abase ?index:a.aindex ~disp ~native_base:true ()
          else begin
            let r = force_reg ctx d e in
            X.mem ~base:r ~disp:moffset ~native_base:true ()
          end
      | A_base ->
          let total_disp = Int32.to_int a.adisp + moffset in
          let simple =
            a.aclean && total_disp >= 0 && total_disp < 0x4000_0000
            &&
            match (a.abase, a.aindex) with
            | _, None -> true
            | None, Some (_, X.S1) -> true
            | _ -> false
          in
          if simple then begin
            let idx =
              match (a.abase, a.aindex) with
              | Some r, None -> Some (r, X.S1)
              | None, Some (r, X.S1) -> Some (r, X.S1)
              | None, None -> None
              | _ -> assert false
            in
            X.mem ~base:heap_base_reg ?index:idx ~disp:total_disp ()
          end
          else begin
            (* Figure 1b: a 32-bit lea folds the computation (and the
               truncation), then the reserved base occupies the base slot. *)
            let target = if d < ring_len then ring d else scratch in
            claim_reg ctx target ~except:(-1);
            emit ctx
              (X.Lea
                 ( X.W32,
                   target,
                   X.mem ?base:a.abase ?index:a.aindex
                     ~disp:(Int32.to_int (Int32.add a.adisp (Int32.of_int moffset)))
                     () ));
            X.mem ~base:heap_base_reg ~index:(target, X.S1) ()
          end)
  | Strategy.Explicit_check ->
      (* Materialize the full 32-bit index, compare against the memory
         bound in the instance context, then access. Without Segue the
         heap-base addition is a separate instruction — the one Segue
         removes (§6.1). *)
      let idx =
        match a with
        | { abase = Some r; aindex = None; adisp = 0l; aclean = true } when moffset = 0 -> r
        | _ ->
            claim_reg ctx scratch ~except:(-1);
            emit ctx
              (X.Lea
                 ( X.W32,
                   scratch,
                   X.mem ?base:a.abase ?index:a.aindex
                     ~disp:(Int32.to_int (Int32.add a.adisp (Int32.of_int moffset)))
                     () ));
            scratch
      in
      emit ctx (X.Cmp (X.W64, X.Reg idx, X.Mem (fs_mem vmctx_memory_bytes)));
      emit ctx (X.Jcc (X.AE, "__trap_oob"));
      (match mode with
      | A_segment -> X.mem ~seg:X.GS ~base:idx ()
      | A_direct -> X.mem ~base:idx ~native_base:true ()
      | A_base ->
          if idx = scratch then begin
            emit ctx (X.Alu (X.Add, X.W64, X.Reg scratch, X.Reg heap_base_reg));
            X.mem ~base:scratch ()
          end
          else begin
            emit ctx (X.Lea (X.W64, scratch, X.mem ~base:heap_base_reg ~index:(idx, X.S1) ()));
            X.mem ~base:scratch ()
          end)
  | Strategy.Mask ->
      claim_reg ctx scratch ~except:(-1);
      emit ctx
        (X.Lea
           ( X.W32,
             scratch,
             X.mem ?base:a.abase ?index:a.aindex
               ~disp:(Int32.to_int (Int32.add a.adisp (Int32.of_int moffset)))
               () ));
      emit ctx (X.Alu (X.And, X.W32, X.Reg scratch, X.Imm 0xFFFFFFFFL));
      (match mode with
      | A_segment -> X.mem ~seg:X.GS ~base:scratch ()
      | A_direct -> X.mem ~base:scratch ~native_base:true ()
      | A_base -> X.mem ~base:heap_base_reg ~index:(scratch, X.S1) ())

(* ------------------------------------------------------------------ *)
(* Relational operators to condition codes.                            *)
(* ------------------------------------------------------------------ *)

let cond_of_relop (op : W.relop) =
  match op with
  | W.Eq -> X.E
  | W.Ne -> X.NE
  | W.Lt_s -> X.L
  | W.Lt_u -> X.B
  | W.Gt_s -> X.G
  | W.Gt_u -> X.A
  | W.Le_s -> X.LE
  | W.Le_u -> X.BE
  | W.Ge_s -> X.GE
  | W.Ge_u -> X.AE

(* Emit a compare for a relop, returning the condition to test. *)
let emit_compare ctx ty op =
  let b = pop_entry ctx in
  let db = ctx.sp in
  let w = width_of ty in
  (* Evaluate b while a is still live: materializing b may need a ring
     register that a's lazy form references, and the claim machinery only
     protects live entries. *)
  let b_op = force_operand ctx db b in
  let a = pop_entry ctx in
  let da = ctx.sp in
  let a_op =
    match (a.loc, b_op) with
    | Lconst _, _ -> X.Reg (force_reg ctx da a)
    | Lspill, X.Mem _ -> X.Reg (force_reg ctx da a)
    | Lspill, _ -> X.Mem (vslot ctx da)
    | _ -> X.Reg (force_reg ctx da a)
  in
  emit ctx (X.Cmp (w, a_op, b_op));
  cond_of_relop op

let emit_eqz_test ctx ty =
  let e = pop_entry ctx in
  let d = ctx.sp in
  let w = width_of ty in
  let r = force_reg ctx d e in
  emit ctx (X.Test (w, X.Reg r, X.Reg r));
  X.E

(* ------------------------------------------------------------------ *)
(* The main lowering.                                                  *)
(* ------------------------------------------------------------------ *)

let import_count ctx = Array.length ctx.m.W.imports

let func_label (m : W.module_) idx =
  let nimports = Array.length m.W.imports in
  "f$" ^ m.W.funcs.(idx - nimports).W.fname

let frame_of ctx depth = List.nth ctx.frames depth

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let rec compile_body ctx (instrs : W.instr list) : bool =
  (* Returns true when the sequence ended in a terminator (the rest of the
     enclosing block is dead and the stack state is meaningless). *)
  match instrs with
  | [] -> false
  | W.Relop (ty, op) :: W.Br_if depth :: rest
    when (frame_of ctx depth).result = None || (frame_of ctx depth).kind = `Loop ->
      let cond = emit_compare ctx ty op in
      emit ctx (X.Jcc (cond, (frame_of ctx depth).branch_label));
      compile_body ctx rest
  | W.Eqz ty :: W.Br_if depth :: rest
    when (frame_of ctx depth).result = None || (frame_of ctx depth).kind = `Loop ->
      let cond = emit_eqz_test ctx ty in
      emit ctx (X.Jcc (cond, (frame_of ctx depth).branch_label));
      compile_body ctx rest
  | W.Relop (ty, op) :: W.If (bt, then_b, else_b) :: rest ->
      let cond = emit_compare ctx ty op in
      compile_if ctx cond bt then_b else_b;
      compile_body ctx rest
  | W.Eqz ty :: W.If (bt, then_b, else_b) :: rest ->
      let cond = emit_eqz_test ctx ty in
      compile_if ctx cond bt then_b else_b;
      compile_body ctx rest
  | i :: rest ->
      if compile_instr ctx i then true else compile_body ctx rest

and compile_if ctx cond bt then_b else_b =
  normalize_for_control ctx;
  let else_l = fresh_label ctx "else" in
  let end_l = fresh_label ctx "endif" in
  emit ctx (X.Jcc (X.negate_cond cond, else_l));
  let entry_sp = ctx.sp in
  let frame =
    { kind = `If; branch_label = end_l; end_label = end_l; result = bt; entry_sp }
  in
  ctx.frames <- frame :: ctx.frames;
  let t_term = compile_body ctx then_b in
  if (not t_term) && bt <> None then move_top_to ctx entry_sp;
  emit ctx (X.Jmp end_l);
  emit ctx (X.Label else_l);
  ctx.sp <- entry_sp;
  let e_term = compile_body ctx else_b in
  if (not e_term) && bt <> None then move_top_to ctx entry_sp;
  emit ctx (X.Label end_l);
  ctx.frames <- List.tl ctx.frames;
  ctx.sp <- entry_sp;
  (match bt with
  | Some ty -> push_entry ctx ty (if entry_sp < ring_len then Lreg else Lspill)
  | None -> ())

and compile_block ctx (kind : [ `Block | `If | `Loop ]) bt body =
  normalize_for_control ctx;
  let entry_sp = ctx.sp in
  let start_l = fresh_label ctx "loop" in
  let end_l = fresh_label ctx "end" in
  let branch_label = match kind with `Loop -> start_l | `Block | `If -> end_l in
  let frame = { kind; branch_label; end_label = end_l; result = bt; entry_sp } in
  ctx.frames <- frame :: ctx.frames;
  if kind = `Loop then emit ctx (X.Label start_l);
  let terminated = compile_body ctx body in
  if (not terminated) && bt <> None then move_top_to ctx entry_sp;
  emit ctx (X.Label end_l);
  ctx.frames <- List.tl ctx.frames;
  ctx.sp <- entry_sp;
  (match bt with
  | Some ty -> push_entry ctx ty (if entry_sp < ring_len then Lreg else Lspill)
  | None -> ())

and compile_br ctx depth =
  let frame = frame_of ctx depth in
  (match (frame.kind, frame.result) with
  | `Loop, _ | _, None -> ()
  | _, Some _ -> move_top_to ctx frame.entry_sp);
  emit ctx (X.Jmp frame.branch_label)

and compile_call ctx ~target ~ft =
  let nargs = List.length ft.W.params in
  let has_result = ft.W.results <> [] in
  let args_base = ctx.sp - nargs in
  spill_for_call ctx ~keep_below:args_base;
  (* Push arguments left to right; the callee reads them from its frame. *)
  for d = args_base to ctx.sp - 1 do
    let e = entry_at ctx d in
    let op = force_operand ctx d e in
    let op =
      (* push imm is limited to 32-bit sign-extended values *)
      match op with
      | X.Imm i when not (Int64.equal i (Int64.of_int32 (Int64.to_int32 i))) ->
          X.Reg (force_reg ctx d e)
      | other -> other
    in
    emit ctx (X.Push op)
  done;
  ctx.sp <- args_base;
  (match target with
  | `Label l -> emit ctx (X.Call l)
  | `Reg r -> emit ctx (X.Call_reg r));
  if nargs > 0 then emit ctx (X.Alu (X.Add, X.W64, X.Reg X.RSP, X.Imm (Int64.of_int (8 * nargs))));
  if has_result then begin
    let ty = List.hd ft.W.results in
    let r, commit = result_target ctx ty in
    if r <> X.RAX then emit ctx (X.Mov (X.W64, X.Reg r, X.Reg X.RAX));
    commit ()
  end

and compile_hostcall ctx ~hostcall_id ~ft =
  let nargs = List.length ft.W.params in
  if nargs > Array.length hostcall_args then
    unsupported "import with %d parameters (max %d)" nargs (Array.length hostcall_args);
  let args_base = ctx.sp - nargs in
  (* Spill everything (including args) to frame slots, then load argument
     registers from the slots — the ring and the hostcall registers
     overlap. *)
  spill_for_call ctx ~keep_below:ctx.sp;
  for d = args_base to ctx.sp - 1 do
    let e = entry_at ctx d in
    let arg_reg = hostcall_args.(d - args_base) in
    (match e.loc with
    | Lconst c -> emit ctx (X.Mov (X.W64, X.Reg arg_reg, X.Imm c))
    | Lalias r -> emit ctx (X.Mov (X.W64, X.Reg arg_reg, X.Reg r))
    | Laddr a ->
        emit ctx
          (X.Lea
             (X.W32, arg_reg, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()))
    | Lspill | Lreg -> emit ctx (X.Mov (X.W64, X.Reg arg_reg, X.Mem (vslot ctx d))))
  done;
  ctx.sp <- args_base;
  emit ctx (X.Hostcall hostcall_id);
  if ft.W.results <> [] then begin
    let ty = List.hd ft.W.results in
    let r, commit = result_target ctx ty in
    (* Host results are untrusted 64-bit values: an i32 result must be
       zero-extended to preserve the register invariant (a 32-bit mov
       does it for free). *)
    (match ty with
    | W.I32 -> emit ctx (X.Mov (X.W32, X.Reg r, X.Reg X.RAX))
    | W.I64 -> if r <> X.RAX then emit ctx (X.Mov (X.W64, X.Reg r, X.Reg X.RAX)));
    commit ()
  end

and compile_binop ctx ty (op : W.binop) =
  let w = width_of ty in
  match op with
  (* i32 address-expression folding: zero instructions when it fits. *)
  | W.Add when ty = W.I32 && ctx.sp <= ring_len -> (
      (* Folding reloads spilled operands through the scratch register;
         beyond the ring both operands would collide there, so deep adds
         take the generic path (the guard above: b's depth < ring_len). *)
      let b = pop_entry ctx in
      let db = ctx.sp in
      let bv = aval ctx db b in
      let a = pop_entry ctx in
      let da = ctx.sp in
      let av = aval ctx da a in
      match merge_add av bv with
      | Some merged -> push_lazy ctx W.I32 (Laddr merged)
      | None ->
          ctx.sp <- ctx.sp + 2;
          generic_binop ctx w X.Add)
  | W.Shl when ty = W.I32 -> (
      match (entry_at ctx (ctx.sp - 1)).loc with
      | Lconst c -> (
          let k = Int64.to_int (Int64.logand c 31L) in
          let _count = pop_entry ctx in
          let a = pop_entry ctx in
          let da = ctx.sp in
          match scale_shl (aval ctx da a) k with
          | Some scaled -> push_lazy ctx W.I32 (Laddr scaled)
          | None ->
              ctx.sp <- ctx.sp + 2;
              compile_shift ctx w X.Shl)
      | _ -> compile_shift ctx w X.Shl)
  | W.Mul
    when ty = W.I32
         && (match (entry_at ctx (ctx.sp - 1)).loc with
            | Lconst (2L | 3L | 4L | 5L | 8L | 9L) -> true
            | _ -> false) -> (
      let c =
        match (entry_at ctx (ctx.sp - 1)).loc with Lconst c -> Int64.to_int c | _ -> assert false
      in
      let _count = pop_entry ctx in
      let a = pop_entry ctx in
      let da = ctx.sp in
      let av = aval ctx da a in
      let folded =
        match c with
        | 2 -> scale_shl av 1
        | 4 -> scale_shl av 2
        | 8 -> scale_shl av 3
        | c -> scale_mul av c
      in
      match folded with
      | Some f -> push_lazy ctx W.I32 (Laddr f)
      | None ->
          ctx.sp <- ctx.sp + 2;
          compile_mul ctx w)
  | W.Add -> generic_binop ctx w X.Add
  | W.Sub -> generic_binop ctx w X.Sub
  | W.And -> generic_binop ctx w X.And
  | W.Or -> generic_binop ctx w X.Or
  | W.Xor -> generic_binop ctx w X.Xor
  | W.Mul -> compile_mul ctx w
  | W.Shl -> compile_shift ctx w X.Shl
  | W.Shr_u -> compile_shift ctx w X.Shr
  | W.Shr_s -> compile_shift ctx w X.Sar
  | W.Rotl -> compile_shift ctx w X.Rol
  | W.Rotr -> compile_shift ctx w X.Ror
  | W.Div_s -> compile_div ctx w ~signed:true ~want_rem:false
  | W.Div_u -> compile_div ctx w ~signed:false ~want_rem:false
  | W.Rem_s -> compile_div ctx w ~signed:true ~want_rem:true
  | W.Rem_u -> compile_div ctx w ~signed:false ~want_rem:true

and generic_binop ctx w op =
  let b = pop_entry ctx in
  let db = ctx.sp in
  let b_op = force_operand ctx db b in
  let a = pop_entry ctx in
  let da = ctx.sp in
  let ty = if w = X.W64 then W.I64 else W.I32 in
  (* Result goes into the ring register of the first operand's depth. *)
  let target = if da < ring_len then ring da else scratch in
  move_entry_into ctx target da a;
  let b_op =
    match b_op with
    | X.Reg r when r = target -> X.Reg (force_reg ctx db b)
    | other -> other
  in
  emit ctx (X.Alu (op, w, X.Reg target, b_op));
  if da < ring_len then push_entry ctx ty Lreg
  else begin
    emit ctx (X.Mov (X.W64, X.Mem (vslot ctx da), X.Reg scratch));
    push_entry ctx ty Lspill
  end

(* Copy an entry's value into [target] (claiming it first). *)
and move_entry_into ctx target d (e : entry) =
  claim_reg ctx target ~except:(-1);
  match e.loc with
  | Lconst c -> emit ctx (X.Mov (X.W64, X.Reg target, X.Imm c))
  | Lalias r -> if r <> target then emit ctx (X.Mov (X.W64, X.Reg target, X.Reg r))
  | Laddr { abase = Some r; aindex = None; adisp = 0l; aclean = true } ->
      if r <> target then emit ctx (X.Mov (X.W64, X.Reg target, X.Reg r))
  | Laddr a ->
      emit ctx
        (X.Lea (X.W32, target, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()))
  | Lreg ->
      let src = if d < ring_len then ring d else scratch in
      if src <> target then emit ctx (X.Mov (X.W64, X.Reg target, X.Reg src))
  | Lspill -> emit ctx (X.Mov (X.W64, X.Reg target, X.Mem (vslot ctx d)))

and compile_mul ctx w =
  let b = pop_entry ctx in
  let db = ctx.sp in
  let b_op = force_operand ~no_imm:true ctx db b in
  let a = pop_entry ctx in
  let da = ctx.sp in
  let ty = if w = X.W64 then W.I64 else W.I32 in
  let target = if da < ring_len then ring da else scratch in
  move_entry_into ctx target da a;
  let b_op = match b_op with X.Reg r when r = target -> X.Reg target | o -> o in
  emit ctx (X.Imul (w, target, b_op));
  if da < ring_len then push_entry ctx ty Lreg
  else begin
    emit ctx (X.Mov (X.W64, X.Mem (vslot ctx da), X.Reg scratch));
    push_entry ctx ty Lspill
  end

and compile_shift ctx w op =
  let count = pop_entry ctx in
  let dc = ctx.sp in
  (* Evaluate a dynamic count while the shiftee is still live. *)
  let count_op = lazy (force_operand ~no_imm:true ctx dc count) in
  (match count.loc with Lconst _ -> () | _ -> ignore (Lazy.force count_op));
  let a = pop_entry ctx in
  let da = ctx.sp in
  let ty = if w = X.W64 then W.I64 else W.I32 in
  match count.loc with
  | Lconst c ->
      let n = Int64.to_int c land (if w = X.W64 then 63 else 31) in
      let target = if da < ring_len then ring da else scratch in
      move_entry_into ctx target da a;
      emit ctx (X.Shift (op, w, X.Reg target, X.Count_imm n));
      if da < ring_len then push_entry ctx ty Lreg
      else begin
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx da), X.Reg scratch));
        push_entry ctx ty Lspill
      end
  | _ ->
      (* Dynamic count must be in CL (= RCX, ring register 1). The shiftee
         may itself live in RCX, so move it to its work register BEFORE
         loading the count. *)
      let count_op = Lazy.force count_op in
      let target = if da < ring_len then ring da else scratch in
      let work = if target = X.RCX then scratch else target in
      move_entry_into ctx work da a;
      free_ring_reg ctx X.RCX;
      (match count_op with
      | X.Reg r when r = X.RCX -> ()
      | op_ -> emit ctx (X.Mov (X.W64, X.Reg X.RCX, op_)));
      emit ctx (X.Shift (op, w, X.Reg work, X.Count_cl));
      if target = X.RCX then begin
        emit ctx (X.Mov (X.W64, X.Reg X.RCX, X.Reg work));
        push_entry ctx ty Lreg
      end
      else if da < ring_len then push_entry ctx ty Lreg
      else begin
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx da), X.Reg scratch));
        push_entry ctx ty Lspill
      end

(* Spill any live stack value currently resident in [r] (used to free RAX /
   RDX / RCX for division and shifts). *)
and free_ring_reg ctx r =
  for d = 0 to ctx.sp - 1 do
    let e = entry_at ctx d in
    if references r e then materialize ctx d;
    let e = entry_at ctx d in
    if e.loc = Lreg && d < ring_len && ring d = r then begin
      emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg r));
      e.loc <- Lspill
    end
  done

and compile_div ctx w ~signed ~want_rem =
  let b = pop_entry ctx in
  let db = ctx.sp in
  (* Divisor to scratch first (it may live in RAX/RDX), evaluated while the
     dividend is still live so its lazy references stay protected. *)
  let b_op = force_operand ~no_imm:true ctx db b in
  (match b_op with
  | X.Reg r when r = scratch -> ()
  | op_ -> emit ctx (X.Mov (X.W64, X.Reg scratch, op_)));
  let a = pop_entry ctx in
  let da = ctx.sp in
  let ty = if w = X.W64 then W.I64 else W.I32 in
  free_ring_reg ctx X.RAX;
  free_ring_reg ctx X.RDX;
  move_entry_into ctx X.RAX da a;
  if signed && want_rem then begin
    (* Wasm: rem_s(min, -1) = 0, but idiv would fault. *)
    let special = fresh_label ctx "rem1" in
    let done_ = fresh_label ctx "remd" in
    emit ctx (X.Cmp (w, X.Reg scratch, X.Imm (-1L)));
    emit ctx (X.Jcc (X.E, special));
    emit ctx (X.Cqo w);
    emit ctx (X.Div (w, true, X.Reg scratch));
    emit ctx (X.Jmp done_);
    emit ctx (X.Label special);
    emit ctx (X.Mov (X.W64, X.Reg X.RDX, X.Imm 0L));
    emit ctx (X.Label done_)
  end
  else begin
    if signed then emit ctx (X.Cqo w)
    else emit ctx (X.Alu (X.Xor, X.W32, X.Reg X.RDX, X.Reg X.RDX));
    emit ctx (X.Div (w, signed, X.Reg scratch))
  end;
  let src = if want_rem then X.RDX else X.RAX in
  let target = if da < ring_len then ring da else scratch in
  if target = src then push_entry ctx ty Lreg
  else begin
    claim_reg ctx target ~except:(-1);
    emit ctx (X.Mov (X.W64, X.Reg target, X.Reg src));
    if da < ring_len then push_entry ctx ty Lreg
    else begin
      emit ctx (X.Mov (X.W64, X.Mem (vslot ctx da), X.Reg target));
      push_entry ctx ty Lspill
    end
  end

and compile_instr ctx (i : W.instr) : bool =
  match i with
  | W.Unreachable ->
      emit ctx (X.Trap X.Trap_unreachable);
      true
  | W.Nop -> false
  | W.Const (W.V_i32 v) ->
      push_entry ctx W.I32 (Lconst (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL));
      false
  | W.Const (W.V_i64 v) ->
      push_entry ctx W.I64 (Lconst v);
      false
  | W.Binop (ty, op) ->
      compile_binop ctx ty op;
      false
  | W.Relop (ty, op) ->
      let cond = emit_compare ctx ty op in
      let r, commit = result_target ctx W.I32 in
      emit ctx (X.Setcc (cond, r));
      commit ();
      false
  | W.Eqz ty ->
      let cond = emit_eqz_test ctx ty in
      let r, commit = result_target ctx W.I32 in
      emit ctx (X.Setcc (cond, r));
      commit ();
      false
  | W.Cvt W.I32_wrap_i64 ->
      let e = pop_entry ctx in
      let d = ctx.sp in
      (match e.loc with
      | Lconst c -> push_entry ctx W.I32 (Lconst (Int64.logand c 0xFFFFFFFFL))
      | Lalias r -> push_lazy ctx W.I32 (Laddr { (aexpr_of_reg r) with aclean = false })
      | Lreg when d < ring_len ->
          push_lazy ctx W.I32 (Laddr { (aexpr_of_reg (ring d)) with aclean = false })
      | Lreg | Lspill ->
          let r = force_reg ctx d e in
          push_lazy ctx W.I32 (Laddr { (aexpr_of_reg r) with aclean = false })
      | Laddr _ -> assert false (* i64 entries are never Laddr *));
      false
  | W.Cvt W.I64_extend_i32_u ->
      let e = pop_entry ctx in
      let d = ctx.sp in
      (match e.loc with
      | Lconst c -> push_entry ctx W.I64 (Lconst (Int64.logand c 0xFFFFFFFFL))
      | _ ->
          (* Materializing guarantees a zero-extended 32-bit value. *)
          let clean = match e.loc with Laddr a -> a.aclean | _ -> true in
          let r = force_reg ctx d e in
          if not clean then begin
            (* Dirty upper bits: the free zero-extension of a 32-bit mov. *)
            let target, commit = result_target ctx W.I64 in
            emit ctx (X.Mov (X.W32, X.Reg target, X.Reg r));
            commit ()
          end
          else if d < ring_len && r = ring d then push_entry ctx W.I64 Lreg
          else if r = scratch then begin
            emit ctx (X.Mov (X.W64, X.Mem (vslot ctx d), X.Reg scratch));
            push_entry ctx W.I64 Lspill
          end
          else push_lazy ctx W.I64 (Lalias r));
      false
  | W.Cvt W.I64_extend_i32_s ->
      let e = pop_entry ctx in
      let d = ctx.sp in
      let op = force_operand ~no_imm:true ctx d e in
      let target, commit = result_target ctx W.I64 in
      (match op with
      | X.Reg r -> emit ctx (X.Movsx (X.W64, X.W32, target, X.Reg r))
      | m -> emit ctx (X.Movsx (X.W64, X.W32, target, m)));
      commit ();
      false
  | W.Clz ty | W.Ctz ty | W.Popcnt ty ->
      let kind =
        match i with
        | W.Clz _ -> X.Lzcnt
        | W.Ctz _ -> X.Tzcnt
        | _ -> X.Popcnt
      in
      let e = pop_entry ctx in
      let d = ctx.sp in
      let op = force_operand ~no_imm:true ctx d e in
      let target, commit = result_target ctx ty in
      emit ctx (X.Bitcnt (kind, width_of ty, target, op));
      commit ();
      false
  | W.Drop ->
      ignore (pop_entry ctx);
      false
  | W.Select ->
      let c = pop_entry ctx in
      let dc = ctx.sp in
      let c_reg = force_reg ctx dc c in
      let b = pop_entry ctx in
      let db = ctx.sp in
      let b_op = force_operand ~no_imm:true ~no_mem:false ctx db b in
      let a = pop_entry ctx in
      let da = ctx.sp in
      let ty = a.ty in
      let target = if da < ring_len then ring da else scratch in
      move_entry_into ctx target da a;
      emit ctx (X.Test (X.W32, X.Reg c_reg, X.Reg c_reg));
      emit ctx (X.Cmovcc (X.E, X.W64, target, b_op));
      if da < ring_len then push_entry ctx ty Lreg
      else begin
        emit ctx (X.Mov (X.W64, X.Mem (vslot ctx da), X.Reg scratch));
        push_entry ctx ty Lspill
      end;
      false
  | W.Local_get n ->
      let ty = ctx.local_tys.(n) in
      (match ctx.homes.(n) with
      | Hreg r ->
          if ty = W.I32 then push_lazy ctx W.I32 (Laddr (aexpr_of_reg r))
          else push_lazy ctx W.I64 (Lalias r)
      | Hframe k ->
          (* Load from the frame slot into the canonical target. *)
          let target, commit = result_target ctx ty in
          emit ctx (X.Mov (X.W64, X.Reg target, X.Mem (frame_slot ctx k)));
          commit ());
      false
  | W.Local_set n ->
      compile_local_set ctx n;
      false
  | W.Local_tee n ->
      compile_local_set ctx n;
      compile_instr ctx (W.Local_get n)
  | W.Global_get n ->
      let ty = ctx.m.W.globals.(n).W.gtype in
      let target, commit = result_target ctx ty in
      emit ctx (X.Mov (X.W64, X.Reg target, X.Mem (fs_mem (vmctx_globals + (8 * n)))));
      commit ();
      false
  | W.Global_set n ->
      let e = pop_entry ctx in
      let d = ctx.sp in
      let op = force_operand ~no_mem:true ctx d e in
      let op =
        match op with
        | X.Imm i when not (Int64.equal i (Int64.of_int32 (Int64.to_int32 i))) ->
            X.Reg (force_reg ctx d e)
        | o -> o
      in
      emit ctx (X.Mov (X.W64, X.Mem (fs_mem (vmctx_globals + (8 * n))), op));
      false
  | W.Load (ty, packing, { offset }) ->
      let addr = pop_entry ctx in
      let d = ctx.sp in
      let mem = lower_address ctx d addr ~moffset:offset ~is_store:false in
      let target, commit = result_target ctx ty in
      (match (ty, packing) with
      | W.I32, None -> emit ctx (X.Mov (X.W32, X.Reg target, X.Mem mem))
      | W.I64, None -> emit ctx (X.Mov (X.W64, X.Reg target, X.Mem mem))
      | _, Some (W.P8, W.Unsigned) -> emit ctx (X.Movzx (width_of ty, X.W8, target, X.Mem mem))
      | _, Some (W.P8, W.Signed) -> emit ctx (X.Movsx (width_of ty, X.W8, target, X.Mem mem))
      | _, Some (W.P16, W.Unsigned) -> emit ctx (X.Movzx (width_of ty, X.W16, target, X.Mem mem))
      | _, Some (W.P16, W.Signed) -> emit ctx (X.Movsx (width_of ty, X.W16, target, X.Mem mem))
      | W.I64, Some (W.P32, W.Unsigned) -> emit ctx (X.Mov (X.W32, X.Reg target, X.Mem mem))
      | W.I64, Some (W.P32, W.Signed) -> emit ctx (X.Movsx (X.W64, X.W32, target, X.Mem mem))
      | W.I32, Some (W.P32, _) -> assert false);
      commit ();
      false
  | W.Store (ty, packing, { offset }) ->
      let v = pop_entry ctx in
      let dv = ctx.sp in
      let w =
        match (ty, packing) with
        | _, Some W.P8 -> X.W8
        | _, Some W.P16 -> X.W16
        | W.I64, Some W.P32 -> X.W32
        | W.I32, None -> X.W32
        | W.I64, None -> X.W64
        | W.I32, Some W.P32 -> assert false
      in
      (* Make sure the value is in a register (or small immediate) before
         the address is popped and lowered: the claim machinery protects
         the (still-live) address entry, and lower_address later claims the
         scratch register. *)
      let v_op = force_operand ~no_mem:true ctx dv v in
      let addr = pop_entry ctx in
      let da = ctx.sp in
      let v_op =
        match v_op with
        | X.Imm i when w = X.W64 && not (Int64.equal i (Int64.of_int32 (Int64.to_int32 i))) ->
            X.Reg (force_reg ctx dv v)
        | o -> o
      in
      let v_op =
        (* The mask/explicit paths use the scratch register for the index;
           if the value also sits in scratch we must move it. *)
        match v_op with
        | X.Reg r
          when r = scratch && ctx.cfg.strategy.Strategy.bounds <> Strategy.Guard_region ->
            let tmp = ring dv in
            claim_reg ctx tmp ~except:(-1);
            emit ctx (X.Mov (X.W64, X.Reg tmp, X.Reg scratch));
            X.Reg tmp
        | o -> o
      in
      let mem = lower_address ctx da addr ~moffset:offset ~is_store:true in
      emit ctx (X.Mov (w, X.Mem mem, v_op));
      false
  | W.Memory_size ->
      let target, commit = result_target ctx W.I32 in
      emit ctx (X.Mov (X.W64, X.Reg target, X.Mem (fs_mem vmctx_memory_bytes)));
      emit ctx (X.Shift (X.Shr, X.W64, X.Reg target, X.Count_imm 16));
      commit ();
      false
  | W.Memory_grow ->
      let ft = { W.params = [ W.I32 ]; W.results = [ W.I32 ] } in
      compile_hostcall ctx ~hostcall_id:hostcall_memory_grow ~ft;
      false
  | W.Memory_copy ->
      compile_bulk ctx "__bulk_copy";
      false
  | W.Memory_fill ->
      compile_bulk ctx "__bulk_fill";
      false
  | W.Block (bt, body) ->
      compile_block ctx `Block bt body;
      false
  | W.Loop (bt, body) ->
      compile_block ctx `Loop bt body;
      false
  | W.If (bt, then_b, else_b) ->
      let e = pop_entry ctx in
      let d = ctx.sp in
      let r = force_reg ctx d e in
      emit ctx (X.Test (X.W32, X.Reg r, X.Reg r));
      compile_if ctx X.NE bt then_b else_b;
      false
  | W.Br depth ->
      compile_br ctx depth;
      true
  | W.Br_if depth ->
      let frame = frame_of ctx depth in
      let e = pop_entry ctx in
      let d = ctx.sp in
      let r = force_reg ctx d e in
      emit ctx (X.Test (X.W32, X.Reg r, X.Reg r));
      if frame.result = None || frame.kind = `Loop then
        emit ctx (X.Jcc (X.NE, frame.branch_label))
      else begin
        (* Carry the block result on the taken path. *)
        let skip = fresh_label ctx "bri" in
        emit ctx (X.Jcc (X.E, skip));
        move_top_to ctx frame.entry_sp;
        emit ctx (X.Jmp frame.branch_label);
        emit ctx (X.Label skip)
      end;
      false
  | W.Br_table (targets, default) ->
      let all = targets @ [ default ] in
      List.iter
        (fun depth ->
          let f = frame_of ctx depth in
          if f.result <> None && f.kind <> `Loop then
            unsupported "br_table to a value-carrying block")
        all;
      let e = pop_entry ctx in
      let d = ctx.sp in
      let r = force_reg ctx d e in
      List.iteri
        (fun k depth ->
          emit ctx (X.Cmp (X.W32, X.Reg r, X.Imm (Int64.of_int k)));
          emit ctx (X.Jcc (X.E, (frame_of ctx depth).branch_label)))
        targets;
      emit ctx (X.Jmp (frame_of ctx default).branch_label);
      true
  | W.Return ->
      (match ctx.result_ty with
      | Some _ ->
          let d = ctx.sp - 1 in
          let e = entry_at ctx d in
          move_entry_into ctx X.RAX d e
      | None -> ());
      emit ctx (X.Jmp ctx.epilogue);
      true
  | W.Call idx ->
      let ft = W.type_of_func ctx.m idx in
      if idx < import_count ctx then compile_hostcall ctx ~hostcall_id:idx ~ft
      else compile_call ctx ~target:(`Label (func_label ctx.m idx)) ~ft;
      false
  | W.Call_indirect tyidx ->
      compile_call_indirect ctx tyidx;
      false

and compile_local_set ctx n =
  let e = pop_entry ctx in
  let d = ctx.sp in
  match ctx.homes.(n) with
  | Hreg home ->
      let op = force_operand ~no_mem:false ctx d e in
      (* Any lazy value referencing the home must be saved first. *)
      claim_reg ctx home ~except:(-1);
      (match op with
      | X.Reg r when r = home -> ()
      | o -> emit ctx (X.Mov (X.W64, X.Reg home, o)))
  | Hframe k ->
      let op = force_operand ~no_mem:true ctx d e in
      let op =
        match op with
        | X.Imm i when not (Int64.equal i (Int64.of_int32 (Int64.to_int32 i))) ->
            X.Reg (force_reg ctx d e)
        | o -> o
      in
      emit ctx (X.Mov (X.W64, X.Mem (frame_slot ctx k), op))

and compile_bulk ctx label =
  (* dst, src/val, len are the top three values; the builtins take them in
     RDI, RSI, RDX. *)
  let args_base = ctx.sp - 3 in
  spill_for_call ctx ~keep_below:ctx.sp;
  for d = args_base to ctx.sp - 1 do
    let e = entry_at ctx d in
    let arg_reg = hostcall_args.(d - args_base) in
    match e.loc with
    | Lconst c -> emit ctx (X.Mov (X.W64, X.Reg arg_reg, X.Imm c))
    | Lalias r -> emit ctx (X.Mov (X.W64, X.Reg arg_reg, X.Reg r))
    | Laddr a ->
        emit ctx
          (X.Lea
             (X.W32, arg_reg, X.mem ?base:a.abase ?index:a.aindex ~disp:(Int32.to_int a.adisp) ()))
    | Lspill | Lreg -> emit ctx (X.Mov (X.W64, X.Reg arg_reg, X.Mem (vslot ctx d)))
  done;
  ctx.sp <- args_base;
  emit ctx (X.Call label)

and compile_call_indirect ctx tyidx =
  let m = ctx.m in
  let ft = m.W.types.(tyidx) in
  let idx_e = pop_entry ctx in
  let d = ctx.sp in
  let r = force_reg ctx d idx_e in
  let table_size = Array.length m.W.table in
  emit ctx (X.Cmp (X.W64, X.Reg r, X.Imm (Int64.of_int table_size)));
  emit ctx (X.Jcc (X.AE, "__trap_table"));
  emit ctx
    (X.Mov
       ( X.W32,
         X.Reg scratch,
         X.Mem (X.mem ~index:(r, X.S4) ~disp:ctx.cfg.table_types_base ()) ));
  emit ctx (X.Cmp (X.W32, X.Reg scratch, X.Imm (Int64.of_int tyidx)));
  emit ctx (X.Jcc (X.NE, "__trap_sig"));
  emit ctx
    (X.Mov (X.W64, X.Reg scratch, X.Mem (X.mem ~index:(r, X.S8) ~disp:ctx.cfg.table_base ())));
  compile_call ctx ~target:(`Reg scratch) ~ft

(* ------------------------------------------------------------------ *)
(* Function compilation.                                               *)
(* ------------------------------------------------------------------ *)

let compile_func cfg m fresh code (f : W.func) =
  let ft = m.W.types.(f.W.ftype) in
  let params = ft.W.params in
  let all_locals = Array.of_list (params @ f.W.locals) in
  let pool = local_pool cfg in
  let n_locals = Array.length all_locals in
  let homes =
    Array.init n_locals (fun i ->
        match List.nth_opt pool i with
        | Some r -> Hreg r
        | None -> Hframe (i - List.length pool))
  in
  let n_frame_locals = max 0 (n_locals - List.length pool) in
  let saved_regs =
    List.filteri (fun i _ -> i < n_locals) pool
  in
  let epilogue = "f$" ^ f.W.fname ^ "$end" in
  let ctx =
    {
      cfg;
      m;
      code;
      vstack = Array.make 16 { ty = W.I32; loc = Lconst 0L };
      sp = 0;
      homes;
      local_tys = all_locals;
      n_frame_locals;
      max_depth = 0;
      frames = [];
      fname = f.W.fname;
      epilogue;
      result_ty = (match ft.W.results with [] -> None | ty :: _ -> Some ty);
      fresh;
      saved_regs;
    }
  in
  emit ctx (X.Label ("f$" ^ f.W.fname));
  emit ctx (X.Push (X.Reg X.RBP));
  emit ctx (X.Mov (X.W64, X.Reg X.RBP, X.Reg X.RSP));
  (* wasm2c-style stack exhaustion check — a sandboxing cost Segue does
     not remove; native code has no equivalent. *)
  if cfg.strategy.Strategy.addressing <> Strategy.Direct then begin
    emit ctx (X.Cmp (X.W64, X.Reg X.RSP, X.Mem (fs_mem vmctx_stack_limit)));
    emit ctx (X.Jcc (X.B, "__trap_stack"))
  end;
  let frame_sub_idx = Vec.push code (X.Alu (X.Sub, X.W64, X.Reg X.RSP, X.Imm 0L)) in
  List.iter (fun r -> emit ctx (X.Push (X.Reg r))) saved_regs;
  (* Copy parameters into their homes: pushed left-to-right by the caller,
     so parameter i sits at [rbp + 16 + 8*(nparams-1-i)]. *)
  let nparams = List.length params in
  for i = 0 to nparams - 1 do
    let src = X.mem ~base:X.RBP ~disp:(16 + (8 * (nparams - 1 - i))) () in
    match homes.(i) with
    | Hreg r -> emit ctx (X.Mov (X.W64, X.Reg r, X.Mem src))
    | Hframe k ->
        emit ctx (X.Mov (X.W64, X.Reg scratch, X.Mem src));
        emit ctx (X.Mov (X.W64, X.Mem (frame_slot ctx k), X.Reg scratch))
  done;
  (* Zero the non-parameter locals, as Wasm requires. *)
  for i = nparams to n_locals - 1 do
    match homes.(i) with
    | Hreg r -> emit ctx (X.Alu (X.Xor, X.W32, X.Reg r, X.Reg r))
    | Hframe k -> emit ctx (X.Mov (X.W64, X.Mem (frame_slot ctx k), X.Imm 0L))
  done;
  (* The function body is one implicit block whose result is the return. *)
  let outer =
    {
      kind = `Block;
      branch_label = epilogue;
      end_label = epilogue;
      result = ctx.result_ty;
      entry_sp = 0;
    }
  in
  ctx.frames <- [ outer ];
  let terminated = compile_body ctx f.W.body in
  (if not terminated then
     match ctx.result_ty with
     | Some _ ->
         let d = ctx.sp - 1 in
         move_entry_into ctx X.RAX d (entry_at ctx d)
     | None -> ());
  emit ctx (X.Label epilogue);
  List.iter (fun r -> emit ctx (X.Pop r)) (List.rev saved_regs);
  emit ctx (X.Mov (X.W64, X.Reg X.RSP, X.Reg X.RBP));
  emit ctx (X.Pop X.RBP);
  emit ctx (X.Ret);
  (* Back-patch the frame size now that the deepest spill is known. *)
  let frame_bytes = 8 * (n_frame_locals + ctx.max_depth + 1) in
  Vec.set code frame_sub_idx (X.Alu (X.Sub, X.W64, X.Reg X.RSP, X.Imm (Int64.of_int frame_bytes)))

(* A br to the outer (function) frame must also place the result in RAX
   rather than a ring register. We handle this by treating the function
   body frame's branch label as the epilogue and patching move semantics:
   move_top_to targets ring.(0) = RAX for entry_sp = 0, which is exactly
   RAX. *)

(* ------------------------------------------------------------------ *)
(* Runtime builtins (trusted code).                                    *)
(* ------------------------------------------------------------------ *)

let emit_builtins code =
  let e i = ignore (Vec.push code i) in
  let mem = X.mem in
  (* __bulk_copy(dst=RDI, src=RSI, len=RDX): bounds-checks both ranges
     against the current memory size, converts the sandbox offsets to
     absolute pointers once, then runs a 16-byte vector loop with a byte
     tail. memmove semantics (backward copy when dst > src).

     The explicit range checks are required for correctness, not merely
     defence in depth: a zero-length copy performs no access, so the guard
     region can never catch [dst > memory_bytes] when [len = 0] — yet the
     spec traps whenever [dst + len] or [src + len] exceeds the memory
     size. The offsets arrive zero-extended from 32 bits, so the 64-bit
     address computation cannot wrap. *)
  e (X.Label "__bulk_copy");
  e (X.Lea (X.W64, X.R15, mem ~base:X.RDI ~index:(X.RDX, X.S1) ()));
  e (X.Cmp (X.W64, X.Reg X.R15, X.Mem (mem ~seg:X.FS ~disp:vmctx_memory_bytes ())));
  e (X.Jcc (X.A, "__trap_oob"));
  e (X.Lea (X.W64, X.R15, mem ~base:X.RSI ~index:(X.RDX, X.S1) ()));
  e (X.Cmp (X.W64, X.Reg X.R15, X.Mem (mem ~seg:X.FS ~disp:vmctx_memory_bytes ())));
  e (X.Jcc (X.A, "__trap_oob"));
  e (X.Mov (X.W64, X.Reg X.R15, X.Mem (mem ~seg:X.FS ~disp:vmctx_heap_base ())));
  e (X.Alu (X.Add, X.W64, X.Reg X.RDI, X.Reg X.R15));
  e (X.Alu (X.Add, X.W64, X.Reg X.RSI, X.Reg X.R15));
  e (X.Cmp (X.W64, X.Reg X.RDI, X.Reg X.RSI));
  e (X.Jcc (X.A, "__bc_bwd"));
  e (X.Label "__bc_fwd");
  e (X.Cmp (X.W64, X.Reg X.RDX, X.Imm 16L));
  e (X.Jcc (X.B, "__bc_fwd_tail"));
  e (X.Vload (X.XMM 0, mem ~base:X.RSI ()));
  e (X.Vstore (mem ~base:X.RDI (), X.XMM 0));
  e (X.Alu (X.Add, X.W64, X.Reg X.RSI, X.Imm 16L));
  e (X.Alu (X.Add, X.W64, X.Reg X.RDI, X.Imm 16L));
  e (X.Alu (X.Sub, X.W64, X.Reg X.RDX, X.Imm 16L));
  e (X.Jmp "__bc_fwd");
  e (X.Label "__bc_fwd_tail");
  e (X.Test (X.W64, X.Reg X.RDX, X.Reg X.RDX));
  e (X.Jcc (X.E, "__bc_done"));
  e (X.Movzx (X.W32, X.W8, X.R15, X.Mem (mem ~base:X.RSI ())));
  e (X.Mov (X.W8, X.Mem (mem ~base:X.RDI ()), X.Reg X.R15));
  e (X.Alu (X.Add, X.W64, X.Reg X.RSI, X.Imm 1L));
  e (X.Alu (X.Add, X.W64, X.Reg X.RDI, X.Imm 1L));
  e (X.Alu (X.Sub, X.W64, X.Reg X.RDX, X.Imm 1L));
  e (X.Jmp "__bc_fwd_tail");
  e (X.Label "__bc_bwd");
  e (X.Cmp (X.W64, X.Reg X.RDX, X.Imm 16L));
  e (X.Jcc (X.B, "__bc_bwd_tail"));
  e (X.Alu (X.Sub, X.W64, X.Reg X.RDX, X.Imm 16L));
  e (X.Vload (X.XMM 0, mem ~base:X.RSI ~index:(X.RDX, X.S1) ()));
  e (X.Vstore (mem ~base:X.RDI ~index:(X.RDX, X.S1) (), X.XMM 0));
  e (X.Jmp "__bc_bwd");
  e (X.Label "__bc_bwd_tail");
  e (X.Test (X.W64, X.Reg X.RDX, X.Reg X.RDX));
  e (X.Jcc (X.E, "__bc_done"));
  e (X.Alu (X.Sub, X.W64, X.Reg X.RDX, X.Imm 1L));
  e (X.Movzx (X.W32, X.W8, X.R15, X.Mem (mem ~base:X.RSI ~index:(X.RDX, X.S1) ())));
  e (X.Mov (X.W8, X.Mem (mem ~base:X.RDI ~index:(X.RDX, X.S1) ()), X.Reg X.R15));
  e (X.Jmp "__bc_bwd_tail");
  e (X.Label "__bc_done");
  e X.Ret;
  (* __bulk_fill(dst=RDI, byte=RSI, len=RDX): 8-byte stores of a replicated
     byte pattern plus a byte tail. The range check mirrors __bulk_copy's:
     without it a zero-length fill at an out-of-bounds address would
     silently succeed. *)
  e (X.Label "__bulk_fill");
  e (X.Lea (X.W64, X.R15, mem ~base:X.RDI ~index:(X.RDX, X.S1) ()));
  e (X.Cmp (X.W64, X.Reg X.R15, X.Mem (mem ~seg:X.FS ~disp:vmctx_memory_bytes ())));
  e (X.Jcc (X.A, "__trap_oob"));
  e (X.Mov (X.W64, X.Reg X.R15, X.Mem (mem ~seg:X.FS ~disp:vmctx_heap_base ())));
  e (X.Alu (X.Add, X.W64, X.Reg X.RDI, X.Reg X.R15));
  e (X.Alu (X.And, X.W64, X.Reg X.RSI, X.Imm 0xFFL));
  e (X.Mov (X.W64, X.Reg X.R15, X.Imm 0x0101010101010101L));
  e (X.Imul (X.W64, X.RSI, X.Reg X.R15));
  e (X.Label "__bf_loop");
  e (X.Cmp (X.W64, X.Reg X.RDX, X.Imm 8L));
  e (X.Jcc (X.B, "__bf_tail"));
  e (X.Alu (X.Sub, X.W64, X.Reg X.RDX, X.Imm 8L));
  e (X.Mov (X.W64, X.Mem (mem ~base:X.RDI ~index:(X.RDX, X.S1) ()), X.Reg X.RSI));
  e (X.Jmp "__bf_loop");
  e (X.Label "__bf_tail");
  e (X.Test (X.W64, X.Reg X.RDX, X.Reg X.RDX));
  e (X.Jcc (X.E, "__bf_done"));
  e (X.Alu (X.Sub, X.W64, X.Reg X.RDX, X.Imm 1L));
  e (X.Mov (X.W8, X.Mem (mem ~base:X.RDI ~index:(X.RDX, X.S1) ()), X.Reg X.RSI));
  e (X.Jmp "__bf_tail");
  e (X.Label "__bf_done");
  e X.Ret;
  (* Trap landing pads. *)
  e (X.Label "__trap_oob");
  e (X.Trap X.Trap_out_of_bounds);
  e (X.Label "__trap_table");
  e (X.Trap X.Trap_out_of_bounds);
  e (X.Label "__trap_sig");
  e (X.Trap X.Trap_indirect_call_type);
  e (X.Label "__trap_stack");
  e (X.Trap X.Trap_unreachable)

(* ------------------------------------------------------------------ *)
(* Entry sequences.                                                    *)
(* ------------------------------------------------------------------ *)

let emit_entry code cfg (m : W.module_) export_name fidx =
  let e i = ignore (Vec.push code i) in
  let label = "entry$" ^ export_name in
  e (X.Label label);
  let strategy = cfg.strategy in
  if Strategy.uses_segment strategy then begin
    e (X.Mov (X.W64, X.Reg X.RAX, X.Mem (fs_mem vmctx_heap_base)));
    e (X.Wrgsbase X.RAX)
  end;
  if Strategy.reserves_base_register strategy then
    e (X.Mov (X.W64, X.Reg X.R14, X.Mem (fs_mem vmctx_heap_base)));
  if cfg.colorguard then begin
    e (X.Mov (X.W64, X.Reg X.RAX, X.Mem (fs_mem vmctx_pkru_sandbox)));
    e X.Wrpkru
  end;
  e (X.Jmp (func_label m fidx));
  label

(* ------------------------------------------------------------------ *)
(* Module compilation.                                                 *)
(* ------------------------------------------------------------------ *)

let compile cfg (m : W.module_) =
  Sfi_wasm.Validate.validate_exn m;
  let m = if cfg.vectorize then Vectorize.apply cfg.strategy m else m in
  let code = Vec.create () in
  let fresh = ref 0 in
  let nimports = Array.length m.W.imports in
  (* Entry sequences first, then function bodies, then builtins. *)
  let entry_labels =
    List.map (fun (name, fidx) ->
        if fidx < nimports then invalid_arg "Codegen: cannot export an import";
        (name, emit_entry code cfg m name fidx))
      m.W.exports
  in
  (try Array.iter (fun f -> compile_func cfg m fresh code f) m.W.funcs
   with Unsupported msg -> invalid_arg ("Codegen: " ^ msg));
  emit_builtins code;
  let program = Vec.to_array code in
  let func_labels =
    Array.init (W.num_funcs m) (fun idx -> if idx < nimports then "" else func_label m idx)
  in
  let table_entries =
    Array.map
      (fun fidx ->
        if fidx < nimports then invalid_arg "Codegen: imports cannot be table entries";
        (func_label m fidx, m.W.funcs.(fidx - nimports).W.ftype))
      m.W.table
  in
  {
    program;
    config = cfg;
    source = m;
    entry_labels;
    func_labels;
    table_entries;
    code_bytes = Sfi_x86.Encode.program_length program;
  }
