type addressing = Direct | Reserved_base | Segment | Segment_loads_only
type bounds = Guard_region | Explicit_check | Mask

type t = { addressing : addressing; bounds : bounds }

let native = { addressing = Direct; bounds = Guard_region }
let wasm_default = { addressing = Reserved_base; bounds = Guard_region }
let segue = { addressing = Segment; bounds = Guard_region }
let segue_loads_only = { addressing = Segment_loads_only; bounds = Guard_region }
let wasm_bounds_checked = { addressing = Reserved_base; bounds = Explicit_check }
let segue_bounds_checked = { addressing = Segment; bounds = Explicit_check }

let masked = { addressing = Reserved_base; bounds = Mask }

let all_sfi =
  [
    wasm_default;
    segue;
    segue_loads_only;
    wasm_bounds_checked;
    segue_bounds_checked;
    masked;
  ]

let reserves_base_register t =
  match t.addressing with
  | Reserved_base | Segment_loads_only -> true
  | Direct | Segment -> false

let uses_segment t =
  match t.addressing with
  | Segment | Segment_loads_only -> true
  | Direct | Reserved_base -> false

let addressing_name = function
  | Direct -> "native"
  | Reserved_base -> "base-reg"
  | Segment -> "segue"
  | Segment_loads_only -> "segue-loads"

let bounds_name = function
  | Guard_region -> "guard"
  | Explicit_check -> "bounds-check"
  | Mask -> "mask"

let name t =
  match t.bounds with
  | Guard_region -> addressing_name t.addressing
  | _ -> addressing_name t.addressing ^ "+" ^ bounds_name t.bounds

let pp ppf t = Format.pp_print_string ppf (name t)
