(** Chaos scheduling for the live FaaS sim.

    Where {!Inject} attacks isolation offline (mutated programs against a
    canary), this arm perturbs a {e running} {!Sfi_faas.Sim} on a seeded
    schedule — kill a random in-flight instance, spike IO latency, force
    transient instantiate failures — and checks resilience invariants
    after every perturbation and at quiescence:

    - {b no cross-tenant blast radius}: a chaos kill fails exactly the
      victim's request; no other tenant's failure count moves;
    - {b availability floor}: completions / attempts stays above the
      configured floor despite the perturbations;
    - {b breakers re-close}: every circuit breaker tripped by a kill is
      Closed again by the end of the run (the schedule leaves a quiesce
      tail for probes to succeed).

    The plan is a pure function of the seed: same seed ⇒ byte-identical
    schedule (compare {!plan_digest}) and, because the sim draws chaos
    randomness from its own dedicated PRNG stream, identical sim
    counters across repeats. *)

type config = {
  seed : int64;
  perturbations : int;  (** events in the schedule (default 200) *)
  duration_ns : float;
      (** simulated run length; events are scheduled in the first 65%,
          leaving a quiesce tail for breakers to re-close *)
  workload : Sfi_faas.Workloads.t;
  engine : Sfi_machine.Machine.engine_kind option;
      (** execution engine ([None] = the machine default) *)
  concurrency : int;
  pool_slots : int;  (** slot pool smaller than [concurrency], so
                         admission is genuinely contended *)
  io_mean_ns : float;
  availability_floor : float;  (** end-of-run availability invariant *)
}

val default_config : ?seed:int64 -> ?perturbations:int -> unit -> config
(** Seed [0xC4A05L], 200 perturbations, 50 ms simulated, hash workload,
    64 tenants over 16 slots, 1 ms IO mean, 5 µs epochs (so handlers
    span epochs and kills find in-flight victims), floor 0.90. *)

val plan : config -> Sfi_faas.Sim.chaos_event list
(** The seeded schedule: sorted perturbations — roughly half kills, a
    quarter latency spikes (2-8x for 0.5-2 ms), a quarter transient
    instantiate-failure bursts (1-4 attempts). Pure in [seed]. *)

val plan_digest : Sfi_faas.Sim.chaos_event list -> string
(** Hex digest of the serialized schedule — byte-identical schedules
    compare equal. *)

type violation = {
  v_index : int;  (** perturbation index, or [-1] for an end-state check *)
  v_kind : string;  (** ["blast-radius"], ["availability"], ["breaker"],
                        ["applied"], ["postmortem"] *)
  v_detail : string;
}

type run_result = {
  digest : string;  (** {!plan_digest} of the schedule that ran *)
  sim : Sfi_faas.Sim.result;
  violations : violation list;  (** empty = all invariants held *)
}

val run :
  ?trace:Sfi_trace.Trace.t -> ?flight:Sfi_trace.Flight.t -> config -> run_result
(** Run the sim fault-free with admission control and per-tenant
    breakers armed, applying the plan and checking the per-perturbation
    blast-radius invariant plus the end-state invariants (availability
    floor, all breakers closed, every scheduled perturbation applied).
    When [flight] is supplied it is armed on the sim; at quiescence every
    injected fault class must have frozen a non-empty post-mortem bundle
    or a ["postmortem"] violation is reported. *)

val fingerprint : run_result -> string
(** Compact counter summary (completed/failed/sheds/kills/checksum/…)
    for determinism comparisons: two runs of the same config must have
    equal digests {e and} equal fingerprints. *)
