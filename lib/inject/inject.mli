(** Sandbox fault-injection containment harness.

    Attacks the isolation claim from the attacker's side: compiles a small
    attack module under each SFI strategy, synthesizes escape attempts by
    mutating the compiled program — memory operands rewritten out of the
    slot, guard instructions deleted, the trusted entry sequence corrupted,
    the neighbour slot's stripe targeted directly — and executes each
    mutant on the simulated machine against a ColorGuard-striped pool
    holding a victim instance with a planted canary.

    Every attempt must be {!Contained} (trapped) or {!Diverged}; an
    {!Escaped} outcome — the mutant read or overwrote the victim's canary —
    is a containment failure, and the test suite treats it as fatal. *)

(** Outcome of one escape attempt. *)
type outcome =
  | Contained of Sfi_x86.Ast.trap_kind
      (** the machine trapped before any cross-sandbox effect *)
  | Escaped of string
      (** the victim's canary was read or overwritten — isolation broke *)
  | Diverged of string
      (** neither: fuel ran out, or the mutant completed without reaching
          the victim (e.g. a rewrite that stayed in bounds) *)

type attempt = {
  a_class : string;  (** mutation class (operand-rewrite, guard-strip, …) *)
  a_desc : string;  (** what was mutated, for diagnostics *)
  a_entry : string;  (** export driven against the mutant *)
  outcome : outcome;
}

type report = { strategy_name : string; attempts : attempt list }
type tally = { contained : int; escaped : int; diverged : int }

val strategies : (string * Sfi_core.Strategy.t) list
(** The five configurations under attack: segue, segue-loads, base-reg,
    bounds-check, mask — all compiled with ColorGuard entry sequences and
    run in a striped pool. *)

val run_strategy : string -> Sfi_core.Strategy.t -> report
(** Compile the attack module under the strategy and run every mutation
    class against a fresh engine per mutant. *)

val run_all : unit -> report list
(** {!run_strategy} over {!strategies}. *)

val tally : report -> tally
val escapes : report -> attempt list

val self_test : unit -> (unit, string) result
(** Prove the harness can observe a real escape: (1) map a host page inside
    a guard window that should be unmapped — the probe must classify
    [Escaped]; (2) swap the sandbox PKRU image for the permissive host
    image in the entry sequence — the neighbour probe must classify
    [Escaped]. [Error] means the harness is blind and its zero-escape
    results are meaningless. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
(** One summary line, plus a line per escaped attempt. *)
