(* Fault-injection containment harness.

   The paper's isolation argument (Table 1, the ColorGuard invariants) is a
   claim about what a *hostile* sandbox cannot do. This module tests that
   claim from the attacker's side: it takes a small attack module, compiles
   it under each SFI strategy, then synthesizes escape attempts by mutating
   the compiled program the way a miscompilation or an in-sandbox code bug
   would — rewriting memory operands out of the slot, deleting guard
   instructions, corrupting the trusted entry sequence — and executes each
   mutant against a striped pool holding a victim instance with a canary.

   Every attempt must end [Contained] (a trap) or [Diverged] (ran to
   uselessness); an [Escaped] — the mutant read or wrote the victim's
   canary — is a containment failure and a test failure. [self_test]
   deliberately weakens the isolation to prove the harness can actually
   observe an escape when one exists. *)

module X = Sfi_x86.Ast
module W = Sfi_wasm.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Runtime = Sfi_runtime.Runtime
module Space = Sfi_vmem.Space
module Prot = Sfi_vmem.Prot
module Units = Sfi_util.Units
open Sfi_wasm.Builder

type outcome =
  | Contained of X.trap_kind
  | Escaped of string
  | Diverged of string

type attempt = {
  a_class : string;
  a_desc : string;
  a_entry : string;
  outcome : outcome;
}

type report = { strategy_name : string; attempts : attempt list }
type tally = { contained : int; escaped : int; diverged : int }

(* The five strategies under attack. All run with ColorGuard striping in
   the harness pool, so guard-region strategies are defended by stripes
   where their guard distance is exceeded. *)
let strategies =
  [
    ("segue", Strategy.segue);
    ("segue-loads", Strategy.segue_loads_only);
    ("base-reg", Strategy.wasm_default);
    ("bounds-check", Strategy.wasm_bounds_checked);
    ("mask", { Strategy.addressing = Strategy.Reserved_base; bounds = Strategy.Mask });
  ]

(* --- the attack module -------------------------------------------------- *)

(* Four exports giving the mutator raw material: a load, a store, a loop of
   in-bounds accesses (operand-rewrite targets deep in a body), and
   unbounded recursion (stack-check target). *)
let attack_module () =
  let b = create ~memory_pages:2 ~max_memory_pages:2 () in
  let probe = declare b "probe" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b probe [ get 0; load32 () ];
  let poke = declare b "poke" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b poke [ get 0; get 1; store32 (); i32 0 ];
  let churn = declare b "churn" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and acc = 2 and a = 3 in
  define b churn ~locals:[ W.I32; W.I32; W.I32 ]
    ([ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 64 ]
        [
          get 0; get i; mul; i32 0x9E37; add; i32 0xFFFC; band; set a;
          get a; get acc; store32 ();
          get acc; get a; load32 (); add; set acc;
        ]
    @ [ get acc ]);
  let recurse = declare b "recurse" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b recurse [ get 0; i32 1; add; call recurse ];
  build b

(* --- harness geometry --------------------------------------------------- *)

(* Small striped pool: 4 slots x 4 MiB memory, 16 MiB guard budget, 15 keys
   available. Striping packs slots well inside the guard distance, so
   neighbour stripes are reachable by a 32-bit offset — exactly the regime
   where MPK colors, not address-space distance, are the isolation. *)
let pool_params =
  {
    Pool.num_slots = 4;
    max_memory_bytes = 4 * Units.mib;
    expected_slot_bytes = 4 * Units.mib;
    guard_bytes = 16 * Units.mib;
    pre_guard_enabled = false;
    num_pkeys_available = 15;
    stripe_enabled = true;
  }

let pool_layout () =
  match Pool.compute pool_params with
  | Ok l ->
      if l.Pool.num_stripes < 2 then failwith "inject: harness pool did not stripe";
      l
  | Error m -> failwith ("inject: harness pool layout: " ^ m)

let fuel = 1 lsl 22
let canary = 0xC0FFEE42
let canary_bytes = "\x42\xEE\xFF\xC0" (* little-endian 0xC0FFEE42 *)
let canary_addr = 64

let compile_strategy strat =
  let cfg = { (Codegen.default_config ~strategy:strat ()) with Codegen.colorguard = true } in
  Codegen.compile cfg (attack_module ())

(* --- attempt execution -------------------------------------------------- *)

let classify ~before ~after result =
  match result with
  | Error (Runtime.Trap k) -> Contained k
  | Error Runtime.Fuel_exhausted -> Diverged "fuel exhausted"
  | Error f -> Diverged (Runtime.fault_name f)
  | Ok v ->
      if after <> before then Escaped "neighbour canary overwritten"
      else if Int64.logand v 0xFFFFFFFFL = Int64.of_int canary then
        Escaped "read neighbour canary"
      else Diverged "completed without trapping"

(* Fresh engine per mutant: attacker in slot 0 (color 1), victim in slot 1
   (color 2) with a canary planted in its heap. *)
let run_attempt layout compiled ~entry ~args =
  let engine = Runtime.create_engine ~allocator:(Runtime.Pool layout) compiled in
  let attacker = Runtime.instantiate engine in
  let victim = Runtime.instantiate engine in
  Runtime.write_memory victim ~addr:canary_addr canary_bytes;
  let before = Runtime.read_memory victim ~addr:canary_addr ~len:4 in
  let result = Runtime.invoke_protected ~fuel attacker entry args in
  let after = Runtime.read_memory victim ~addr:canary_addr ~len:4 in
  classify ~before ~after result

(* --- program surgery ---------------------------------------------------- *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* [entries, bodies) and [bodies, builtins): entry sequences come first,
   then function bodies ("f$" labels), then runtime builtins ("__"). *)
let regions (prog : X.program) =
  let n = Array.length prog in
  let first_body = ref n in
  let first_builtin = ref n in
  Array.iteri
    (fun i ins ->
      match ins with
      | X.Label l when starts_with "f$" l && !first_body = n -> first_body := i
      | X.Label l when starts_with "__" l && !first_builtin = n -> first_builtin := i
      | _ -> ())
    prog;
  (!first_body, !first_builtin)

(* Export whose body (or entry sequence) contains instruction [i]. *)
let enclosing_label prefix prog i =
  let rec scan j =
    if j < 0 then None
    else
      match prog.(j) with
      | X.Label l when starts_with prefix l ->
          Some (String.sub l (String.length prefix) (String.length l - String.length prefix))
      | _ -> scan (j - 1)
  in
  scan i

let map_mem f (ins : X.instr) =
  let om = function X.Mem m -> X.Mem (f m) | o -> o in
  match ins with
  | X.Mov (w, d, s) -> X.Mov (w, om d, om s)
  | X.Movzx (dw, sw, r, s) -> X.Movzx (dw, sw, r, om s)
  | X.Movsx (dw, sw, r, s) -> X.Movsx (dw, sw, r, om s)
  | X.Alu (op, w, d, s) -> X.Alu (op, w, om d, om s)
  | X.Shift (op, w, d, c) -> X.Shift (op, w, om d, c)
  | X.Imul (w, r, s) -> X.Imul (w, r, om s)
  | X.Bitcnt (b, w, r, s) -> X.Bitcnt (b, w, r, om s)
  | X.Div (w, sg, s) -> X.Div (w, sg, om s)
  | X.Neg (w, o) -> X.Neg (w, om o)
  | X.Not (w, o) -> X.Not (w, om o)
  | X.Cmp (w, a, b) -> X.Cmp (w, om a, om b)
  | X.Test (w, a, b) -> X.Test (w, om a, om b)
  | X.Cmovcc (c, w, r, s) -> X.Cmovcc (c, w, r, om s)
  | X.Push o -> X.Push (om o)
  | X.Vload (v, m) -> X.Vload (v, f m)
  | X.Vstore (m, v) -> X.Vstore (f m, v)
  | _ -> ins

(* A memory operand that reaches linear memory under [strat] — %gs-relative
   (Segue), or based/indexed on the reserved heap-base register. %fs is the
   trusted vmctx, never a sandbox access. *)
let is_sandbox_mem strat (m : X.mem) =
  match m.X.seg with
  | Some X.GS -> true
  | Some X.FS -> false
  | None ->
      Strategy.reserves_base_register strat
      && (m.X.base = Some X.R14
         || match m.X.index with Some (X.R14, _) -> true | _ -> false)

let insert_at prog i ins =
  Array.concat [ Array.sub prog 0 i; [| ins |]; Array.sub prog i (Array.length prog - i) ]

let is_fs_mem disp (m : X.mem) = m.X.seg = Some X.FS && m.X.disp = disp

(* --- mutation classes --------------------------------------------------- *)

let benign_args = function
  | "poke" -> [ 16L; 7L ]
  | "churn" -> [ 3L ]
  | "recurse" -> [ 0L ]
  | _ -> [ 16L ]

(* Arguments that address the victim's canary directly: offset
   [delta + canary_addr] from the attacker's heap base lands on the
   neighbour slot's canary if nothing stops it. *)
let hostile_args delta = function
  | "poke" -> [ Int64.of_int (delta + canary_addr); 0x41414141L ]
  | "churn" -> [ 3L ]
  | "recurse" -> [ 0L ]
  | _ -> [ Int64.of_int (delta + canary_addr) ]

let run_strategy name strat =
  let compiled = compile_strategy strat in
  let layout = pool_layout () in
  let delta = layout.Pool.slot_bytes in
  let prog = compiled.Codegen.program in
  let first_body, first_builtin = regions prog in
  let attempts = ref [] in
  let add a_class a_desc a_entry mutated args =
    let mutant = { compiled with Codegen.program = mutated } in
    let outcome = run_attempt layout mutant ~entry:a_entry ~args in
    attempts := { a_class; a_desc; a_entry; outcome } :: !attempts
  in
  (* (a) operand rewrites: point a sandbox memory operand out of the slot —
     a large positive displacement (over the neighbour stripes, into
     unmapped slab) and a reach *below* the heap with the 32-bit
     address-size truncation removed. *)
  for i = first_body to first_builtin - 1 do
    match prog.(i) with
    | X.Label _ | X.Lea _ -> ()
    | ins when List.exists (is_sandbox_mem strat) (X.mem_operands ins) -> (
        match enclosing_label "f$" prog i with
        | None -> ()
        | Some entry ->
            let rewrite f =
              Array.mapi
                (fun j ins' ->
                  if j = i then
                    map_mem (fun m -> if is_sandbox_mem strat m then f m else m) ins'
                  else ins')
                prog
            in
            add "operand-rewrite"
              (Printf.sprintf "instr %d: disp += 2 GiB" i)
              entry
              (rewrite (fun m -> { m with X.disp = m.X.disp + 0x7FF0_0000 }))
              (benign_args entry);
            add "operand-rewrite"
              (Printf.sprintf "instr %d: addr32 off, disp -= 16 MiB" i)
              entry
              (rewrite (fun m ->
                   { m with X.addr32 = false; disp = m.X.disp - (16 * Units.mib) }))
              (benign_args entry))
    | _ -> ()
  done;
  (* (b) guard strips: delete the SFI check and drive the now-unchecked
     access at the victim's canary. *)
  for i = first_body to first_builtin - 1 do
    let strip_pair desc =
      match enclosing_label "f$" prog i with
      | None -> ()
      | Some entry ->
          let mutated = Array.copy prog in
          mutated.(i) <- X.Nop;
          mutated.(i + 1) <- X.Nop;
          add "guard-strip" (Printf.sprintf "instr %d: %s" i desc) entry mutated
            (hostile_args delta entry)
    in
    match (prog.(i), if i + 1 < first_builtin then Some prog.(i + 1) else None) with
    | X.Cmp (X.W64, _, X.Mem m), Some (X.Jcc (X.AE, "__trap_oob"))
      when is_fs_mem Codegen.vmctx_memory_bytes m ->
        strip_pair "bounds check deleted"
    | X.Cmp (X.W64, X.Reg X.RSP, X.Mem m), Some (X.Jcc (X.B, "__trap_stack"))
      when is_fs_mem Codegen.vmctx_stack_limit m ->
        strip_pair "stack check deleted"
    | X.Lea (X.W32, r, lm), Some (X.Alu (X.And, X.W32, X.Reg r', X.Imm 0xFFFFFFFFL))
      when r = r' -> (
        (* defeat masking: widen the truncating lea and delete the mask *)
        match enclosing_label "f$" prog i with
        | None -> ()
        | Some entry ->
            let mutated = Array.copy prog in
            mutated.(i) <- X.Lea (X.W64, r, lm);
            mutated.(i + 1) <- X.Nop;
            add "guard-strip"
              (Printf.sprintf "instr %d: mask widened and deleted" i)
              entry mutated (hostile_args delta entry))
    | _ -> ()
  done;
  (* (c) trusted-setup corruption: skew the segment/base-register load in
     the entry sequence by one slot stride (the attacker's view of linear
     memory becomes the victim's slot), and corrupt the PKRU image toward
     deny-everything (must fail closed). *)
  for i = 0 to first_body - 1 do
    match prog.(i) with
    | X.Wrgsbase r -> (
        match enclosing_label "entry$" prog i with
        | None -> ()
        | Some entry ->
            add "setup-corrupt"
              (Printf.sprintf "instr %d: gs base skewed one slot" i)
              entry
              (insert_at prog i (X.Alu (X.Add, X.W64, X.Reg r, X.Imm (Int64.of_int delta))))
              (hostile_args 0 entry))
    | X.Mov (X.W64, X.Reg X.R14, X.Mem m) when is_fs_mem Codegen.vmctx_heap_base m -> (
        match enclosing_label "entry$" prog i with
        | None -> ()
        | Some entry ->
            add "setup-corrupt"
              (Printf.sprintf "instr %d: base register skewed one slot" i)
              entry
              (insert_at prog (i + 1)
                 (X.Alu (X.Add, X.W64, X.Reg X.R14, X.Imm (Int64.of_int delta))))
              (hostile_args 0 entry))
    | X.Wrpkru -> (
        match enclosing_label "entry$" prog i with
        | None -> ()
        | Some entry ->
            add "setup-corrupt"
              (Printf.sprintf "instr %d: pkru image corrupted (deny all)" i)
              entry
              (insert_at prog i (X.Alu (X.Or, X.W32, X.Reg X.RAX, X.Imm 0xFFFFFFFCL)))
              (benign_args entry))
    | _ -> ()
  done;
  (* (d) neighbour probes: the unmutated program driven straight at the
     victim's stripe and far out of the slab. *)
  add "neighbour-probe"
    (Printf.sprintf "probe victim canary at +%d" (delta + canary_addr))
    "probe" prog
    [ Int64.of_int (delta + canary_addr) ];
  add "neighbour-probe"
    (Printf.sprintf "poke victim canary at +%d" (delta + canary_addr))
    "poke" prog
    [ Int64.of_int (delta + canary_addr); 0xDEADL ];
  add "neighbour-probe" "probe 2 GiB past the slab" "probe" prog [ 0x7FF0_0000L ];
  { strategy_name = name; attempts = List.rev !attempts }

let run_all () = List.map (fun (name, strat) -> run_strategy name strat) strategies

(* --- reporting ---------------------------------------------------------- *)

let tally r =
  List.fold_left
    (fun t a ->
      match a.outcome with
      | Contained _ -> { t with contained = t.contained + 1 }
      | Escaped _ -> { t with escaped = t.escaped + 1 }
      | Diverged _ -> { t with diverged = t.diverged + 1 })
    { contained = 0; escaped = 0; diverged = 0 }
    r.attempts

let escapes r =
  List.filter (fun a -> match a.outcome with Escaped _ -> true | _ -> false) r.attempts

let pp_outcome ppf = function
  | Contained k -> Format.fprintf ppf "contained (%s)" (X.trap_name k)
  | Escaped why -> Format.fprintf ppf "ESCAPED: %s" why
  | Diverged why -> Format.fprintf ppf "diverged (%s)" why

let pp_report ppf r =
  let t = tally r in
  Format.fprintf ppf "%-12s  %d attempts: %d contained, %d diverged, %d escaped@."
    r.strategy_name
    (List.length r.attempts)
    t.contained t.diverged t.escaped;
  List.iter
    (fun a ->
      match a.outcome with
      | Escaped _ ->
          Format.fprintf ppf "  !! %s %s (%s): %a@." a.a_class a.a_desc a.a_entry
            pp_outcome a.outcome
      | _ -> ())
    r.attempts

(* --- self test ---------------------------------------------------------- *)

(* Weakening 1: simple allocator, no ColorGuard — host maps an rw page
   inside what should be the unmapped guard window. The unmutated probe
   must come back Escaped; if it doesn't, the harness cannot see escapes. *)
let self_test_guard_hole () =
  let cfg = Codegen.default_config ~strategy:Strategy.segue () in
  let compiled = Codegen.compile cfg (attack_module ()) in
  let engine =
    Runtime.create_engine ~allocator:(Runtime.Simple { reservation = 4 * Units.gib }) compiled
  in
  let inst = Runtime.instantiate engine in
  let space = Runtime.space engine in
  let hole = Runtime.heap_base inst + 0x7FF0_0000 in
  (match Space.map space ~addr:hole ~len:Space.page_size ~prot:Prot.rw with
  | Ok () -> ()
  | Error m -> failwith ("self-test: map guard hole: " ^ m));
  Space.write32 space hole (Int32.of_int canary);
  let before = "" and after = "" in
  let result = Runtime.invoke_protected ~fuel inst "probe" [ 0x7FF0_0000L ] in
  match classify ~before ~after result with
  | Escaped _ -> Ok ()
  | o ->
      Error
        (Format.asprintf
           "self-test: guard hole not detected as escape (got %a)" pp_outcome o)

(* Weakening 2: striped pool, ColorGuard on, but the entry sequence loads
   the *host* PKRU image (allow-all) instead of the sandbox image — the
   neighbour probe must read the victim's canary and classify Escaped. *)
let self_test_pkru_swap () =
  let compiled = compile_strategy Strategy.segue in
  let layout = pool_layout () in
  let weakened =
    Array.map
      (map_mem (fun m ->
           if is_fs_mem Codegen.vmctx_pkru_sandbox m then
             { m with X.disp = Codegen.vmctx_pkru_host }
           else m))
      compiled.Codegen.program
  in
  let delta = layout.Pool.slot_bytes in
  let outcome =
    run_attempt layout
      { compiled with Codegen.program = weakened }
      ~entry:"probe"
      ~args:[ Int64.of_int (delta + canary_addr) ]
  in
  match outcome with
  | Escaped _ -> Ok ()
  | o ->
      Error
        (Format.asprintf
           "self-test: pkru swap not detected as escape (got %a)" pp_outcome o)

let self_test () =
  match self_test_guard_hole () with
  | Error _ as e -> e
  | Ok () -> self_test_pkru_swap ()
