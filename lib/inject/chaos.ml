(* Chaos scheduling over the live FaaS sim: seeded perturbation plans,
   blast-radius accounting after every event, and end-state invariants.
   Policy lives here; the mechanism (applying a perturbation to the run)
   lives in Sim. *)

module Sim = Sfi_faas.Sim
module Workloads = Sfi_faas.Workloads
module Breaker = Sfi_faas.Breaker
module Runtime = Sfi_runtime.Runtime
module Prng = Sfi_util.Prng

type config = {
  seed : int64;
  perturbations : int;
  duration_ns : float;
  workload : Workloads.t;
  engine : Sfi_machine.Machine.engine_kind option;
  concurrency : int;
  pool_slots : int;
  io_mean_ns : float;
  availability_floor : float;
}

let default_config ?(seed = 0xC4A05L) ?(perturbations = 200) () =
  {
    seed;
    perturbations;
    duration_ns = 50.0e6;
    workload = Workloads.Hash_balance;
    engine = None;
    concurrency = 64;
    pool_slots = 16;
    io_mean_ns = 1.0e6;
    availability_floor = 0.90;
  }

(* Schedule events in the first 65% of the run: the tail is quiesce time
   for tripped breakers to probe and re-close and queues to drain. *)
let plan cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let horizon = 0.65 *. cfg.duration_ns in
  let events =
    List.init cfg.perturbations (fun _ ->
        let at_ns = 0.05 *. cfg.duration_ns +. Prng.float rng (horizon -. (0.05 *. cfg.duration_ns)) in
        let action =
          match Prng.int rng 4 with
          | 0 | 1 -> Sim.Chaos_kill
          | 2 ->
              Sim.Chaos_latency
                {
                  factor = 2.0 +. Prng.float rng 6.0;
                  window_ns = 0.5e6 +. Prng.float rng 1.5e6;
                }
          | _ -> Sim.Chaos_instantiate_fail (1 + Prng.int rng 4)
        in
        { Sim.at_ns; action })
  in
  List.sort (fun a b -> compare a.Sim.at_ns b.Sim.at_ns) events

let plan_digest events =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string b
        (match ev.Sim.action with
        | Sim.Chaos_kill -> Printf.sprintf "%.3f kill\n" ev.Sim.at_ns
        | Sim.Chaos_latency { factor; window_ns } ->
            Printf.sprintf "%.3f latency %.4f %.3f\n" ev.Sim.at_ns factor window_ns
        | Sim.Chaos_instantiate_fail n ->
            Printf.sprintf "%.3f instfail %d\n" ev.Sim.at_ns n))
    events;
  Digest.to_hex (Digest.string (Buffer.contents b))

type violation = { v_index : int; v_kind : string; v_detail : string }

type run_result = { digest : string; sim : Sim.result; violations : violation list }

let action_class = function
  | Sim.Chaos_kill -> "chaos.kill"
  | Sim.Chaos_latency _ -> "chaos.latency"
  | Sim.Chaos_instantiate_fail _ -> "chaos.instantiate_fail"

let run ?(trace = Sfi_trace.Trace.null) ?flight cfg =
  let events = plan cfg in
  let digest = plan_digest events in
  let violations = ref [] in
  let violate ~index ~kind detail =
    violations := { v_index = index; v_kind = kind; v_detail = detail } :: !violations
  in
  (* Blast radius: between two perturbations of a fault-free run the only
     failure source is a chaos kill, so the per-tenant failure delta must
     be exactly +1 at the victim and 0 everywhere else. *)
  let prev_failed = ref (Array.make cfg.concurrency 0) in
  let on_perturbation (r : Sim.chaos_report) =
    Array.iteri
      (fun id now ->
        let d = now - !prev_failed.(id) in
        let expected = if id = r.Sim.cr_victim then 1 else 0 in
        if d <> expected then
          violate ~index:r.Sim.cr_index ~kind:"blast-radius"
            (Printf.sprintf "tenant %d failures moved %+d (expected %+d, victim %d)"
               id d expected r.Sim.cr_victim))
      r.Sim.cr_failed;
    prev_failed := Array.copy r.Sim.cr_failed
  in
  let overload =
    {
      Sim.no_overload with
      Sim.pool_slots = Some cfg.pool_slots;
      admission =
        Some
          {
            Runtime.target_delay_ns = 50_000.0;
            interval_ns = 200_000.0;
            ticket_deadline_ns = 2.0e6;
            tenant_rate = 20_000.0;
            tenant_burst = 16.0;
          };
      breaker =
        Some
          {
            Breaker.failure_threshold = 1 (* every kill trips, probing recovery *);
            base_backoff_ns = 0.2e6;
            max_backoff_ns = 2.0e6;
            backoff_jitter = 0.2;
            latency_threshold_ns = None;
          };
      slo = Some (Sfi_faas.Slo.default_config ());
    }
  in
  let sim_cfg =
    {
      (Sim.default_config ~workload:cfg.workload ~churn:true ~overload
         ?engine:cfg.engine ~chaos:events ~on_perturbation ~fair_scheduling:true ())
      with
      Sim.concurrency = cfg.concurrency;
      duration_ns = cfg.duration_ns;
      io_mean_ns = cfg.io_mean_ns;
      (* 5 us epochs: the ~16 us handlers span several epochs, so kills
         find in-flight victims; 16-epoch deadline keeps the watchdog off
         well-behaved requests. *)
      epoch_ns = 5000.0;
      faults = { Sim.no_faults with Sim.deadline_epochs = 16 };
      seed = cfg.seed;
      trace;
      flight;
    }
  in
  let sim = Sim.run sim_cfg in
  if sim.Sim.chaos_applied <> cfg.perturbations then
    violate ~index:(-1) ~kind:"applied"
      (Printf.sprintf "%d of %d perturbations applied" sim.Sim.chaos_applied
         cfg.perturbations);
  if sim.Sim.availability < cfg.availability_floor then
    violate ~index:(-1) ~kind:"availability"
      (Printf.sprintf "availability %.4f below floor %.2f" sim.Sim.availability
         cfg.availability_floor);
  if sim.Sim.breakers_open_at_end > 0 then
    violate ~index:(-1) ~kind:"breaker"
      (Printf.sprintf "%d breakers still open at quiescence"
         sim.Sim.breakers_open_at_end);
  if sim.Sim.watchdog_kills > 0 then
    (* A watchdog kill in a fault-free chaos run means the deadline is
       mis-sized — it would also poison the blast-radius accounting. *)
    violate ~index:(-1) ~kind:"blast-radius"
      (Printf.sprintf "%d watchdog kills in a fault-free run" sim.Sim.watchdog_kills);
  (* When a flight recorder is armed, every injected fault class must have
     frozen a non-empty post-mortem bundle by quiescence. *)
  (match flight with
  | None -> ()
  | Some fr ->
      let classes =
        List.sort_uniq compare (List.map (fun ev -> action_class ev.Sim.action) events)
      in
      List.iter
        (fun cls ->
          match Sfi_trace.Flight.find fr cls with
          | None ->
              violate ~index:(-1) ~kind:"postmortem"
                (Printf.sprintf "no post-mortem bundle for %s" cls)
          | Some b ->
              if b.Sfi_trace.Flight.b_events = [] then
                violate ~index:(-1) ~kind:"postmortem"
                  (Printf.sprintf "empty post-mortem bundle for %s" cls))
        classes);
  { digest; sim; violations = List.rev !violations }

let fingerprint r =
  let s = r.sim in
  Printf.sprintf
    "completed=%d failed=%d shed=%d/%d/%d recycles=%d kills=%d opens=%d fastfail=%d checksum=%Ld"
    s.Sim.completed s.Sim.failed s.Sim.shed_sojourn s.Sim.shed_rate_limited
    s.Sim.shed_queue_full s.Sim.recycles s.Sim.chaos_kills s.Sim.breaker_opens
    s.Sim.breaker_fast_fails s.Sim.checksum
